package txn

import (
	"errors"
	"sync"
	"testing"

	"hybridstore/internal/value"
)

func pk(id int64) []value.Value  { return []value.Value{value.NewBigint(id)} }
func row(id, v int64) []value.Value {
	return []value.Value{value.NewBigint(id), value.NewBigint(v)}
}

func TestCommitAdvancesTimestamps(t *testing.T) {
	m := NewManager()
	if m.ReadTS() != 0 {
		t.Fatalf("fresh manager ReadTS = %d", m.ReadTS())
	}
	tb := NewTable("t")
	t1 := m.Begin()
	if err := tb.Claim(t1, pk(1), row(1, 10), nil); err != nil {
		t.Fatal(err)
	}
	ts := m.Commit(t1, nil)
	if ts != 1 || t1.CommitTS() != 1 || m.ReadTS() != 1 {
		t.Fatalf("commit ts=%d, CommitTS=%d, ReadTS=%d", ts, t1.CommitTS(), m.ReadTS())
	}
	t2 := m.Begin()
	if t2.BeginTS != 1 {
		t.Fatalf("BeginTS = %d, want 1", t2.BeginTS)
	}
	if err := tb.Claim(t2, pk(2), row(2, 20), nil); err != nil {
		t.Fatal(err)
	}
	if ts := m.Commit(t2, nil); ts != 2 {
		t.Fatalf("second commit ts = %d", ts)
	}
}

func TestFirstUpdaterWins(t *testing.T) {
	m := NewManager()
	tb := NewTable("t")
	t1, t2 := m.Begin(), m.Begin()
	if err := tb.Claim(t1, pk(1), row(1, 11), nil); err != nil {
		t.Fatal(err)
	}
	// Uncommitted claim by a live transaction blocks t2 immediately.
	if err := tb.Claim(t2, pk(1), row(1, 12), nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("claim against live claim: %v", err)
	}
	m.Commit(t1, nil)
	// After t1 committed, the version is newer than t2's snapshot.
	if err := tb.Claim(t2, pk(1), row(1, 12), nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("claim against newer commit: %v", err)
	}
	// A transaction begun after the commit claims freely.
	t3 := m.Begin()
	if err := tb.Claim(t3, pk(1), row(1, 13), nil); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteOwnClaim(t *testing.T) {
	m := NewManager()
	tb := NewTable("t")
	t1 := m.Begin()
	if err := tb.Claim(t1, pk(1), row(1, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := tb.Claim(t1, pk(1), row(1, 2), nil); err != nil {
		t.Fatal(err)
	}
	if t1.Writes() != 1 {
		t.Fatalf("rewrite duplicated the write set: %d entries", t1.Writes())
	}
	if got, chained := tb.VisibleForWrite(t1, pk(1)); !chained || got[1].Int() != 2 {
		t.Fatalf("own claim not visible for write: %v %v", got, chained)
	}
}

func TestSnapshotVisibility(t *testing.T) {
	m := NewManager()
	tb := NewTable("t")
	old := m.Begin() // snapshot 0

	t1 := m.Begin()
	// base pre-image 100 captured at chain creation
	if err := tb.Claim(t1, pk(1), row(1, 101), row(1, 100)); err != nil {
		t.Fatal(err)
	}
	// t1 sees its own uncommitted version; old sees the pre-image.
	assertVisible(t, tb, t1.BeginTS, t1, 1, 101)
	assertVisible(t, tb, old.BeginTS, old, 1, 100)
	m.Commit(t1, nil) // ts 1
	// old's snapshot (0) still resolves to the pre-image.
	assertVisible(t, tb, old.BeginTS, old, 1, 100)
	// a fresh snapshot sees the committed version.
	assertVisible(t, tb, m.ReadTS(), nil, 1, 101)
}

func TestTombstoneHidesKey(t *testing.T) {
	m := NewManager()
	tb := NewTable("t")
	old := m.Begin()
	t1 := m.Begin()
	if err := tb.Claim(t1, pk(1), nil, row(1, 100)); err != nil { // delete
		t.Fatal(err)
	}
	m.Commit(t1, nil)
	// Deleted for new snapshots, alive for the old one.
	if _, _, vis := lookup(tb, m.ReadTS(), nil, 1); vis {
		t.Fatal("tombstoned key still visible to a new snapshot")
	}
	assertVisible(t, tb, old.BeginTS, old, 1, 100)
}

func TestAbortRestoresBaseAuthority(t *testing.T) {
	m := NewManager()
	tb := NewTable("t")
	t1 := m.Begin()
	if err := tb.Claim(t1, pk(1), row(1, 5), row(1, 4)); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("chains = %d", tb.Len())
	}
	m.Abort(t1)
	if tb.Len() != 0 {
		t.Fatalf("abort left %d chains (base pre-image should not pin one)", tb.Len())
	}
	// The key is claimable again.
	t2 := m.Begin()
	if err := tb.Claim(t2, pk(1), row(1, 6), row(1, 4)); err != nil {
		t.Fatal(err)
	}
}

func TestPruneRespectsBothBounds(t *testing.T) {
	m := NewManager()
	tb := NewTable("t")
	old := m.Begin() // snapshot 0 stays live

	t1 := m.Begin()
	if err := tb.Claim(t1, pk(1), row(1, 1), row(1, 0)); err != nil {
		t.Fatal(err)
	}
	m.Commit(t1, nil) // ts 1

	// Folded, but the old snapshot still needs the pre-image.
	if n := tb.Prune(m.ReadTS(), m.MinActiveTS()); n != 0 {
		t.Fatalf("pruned %d chains under a live old snapshot", n)
	}
	m.Abort(old)
	// Committed but not folded: must survive too.
	if n := tb.Prune(0, m.MinActiveTS()); n != 0 {
		t.Fatalf("pruned %d unfolded chains", n)
	}
	if n := tb.Prune(m.ReadTS(), m.MinActiveTS()); n != 1 || tb.Len() != 0 {
		t.Fatalf("prune: %d dropped, %d left", n, tb.Len())
	}

	// A chain with an uncommitted head survives any bound.
	t2 := m.Begin()
	if err := tb.Claim(t2, pk(2), row(2, 2), nil); err != nil {
		t.Fatal(err)
	}
	if n := tb.Prune(^uint64(0), ^uint64(0)); n != 0 {
		t.Fatalf("pruned a chain with an uncommitted head")
	}
}

func TestMinActiveTS(t *testing.T) {
	m := NewManager()
	tb := NewTable("t")
	t1 := m.Begin() // snapshot 0
	if err := tb.Claim(t1, pk(1), row(1, 1), nil); err != nil {
		t.Fatal(err)
	}
	m.Commit(t1, nil) // ts 1
	t2 := m.Begin()   // snapshot 1
	if got := m.MinActiveTS(); got != 1 {
		t.Fatalf("MinActiveTS = %d, want 1", got)
	}
	old := m.Begin()
	old.BeginTS = 0 // simulate an older live snapshot
	_ = old
	m.Abort(t2)
	if m.ActiveCount() != 1 {
		t.Fatalf("active = %d", m.ActiveCount())
	}
}

func TestConcurrentClaimsOneWinner(t *testing.T) {
	m := NewManager()
	tb := NewTable("t")
	const racers = 16
	var wg sync.WaitGroup
	wins := make(chan *Txn, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			tx := m.Begin()
			if err := tb.Claim(tx, pk(7), row(7, n), nil); err != nil {
				m.Abort(tx)
				return
			}
			wins <- tx
		}(int64(i))
	}
	wg.Wait()
	close(wins)
	var winners []*Txn
	for tx := range wins {
		winners = append(winners, tx)
	}
	if len(winners) != 1 {
		t.Fatalf("%d racers claimed the same key", len(winners))
	}
	m.Commit(winners[0], nil)
}

func assertVisible(t *testing.T, tb *Table, s uint64, tx *Txn, id, want int64) {
	t.Helper()
	got, ok, vis := lookup(tb, s, tx, id)
	if !ok || !vis {
		t.Fatalf("key %d not visible at snapshot %d", id, s)
	}
	if got[1].Int() != want {
		t.Fatalf("key %d at snapshot %d: got %d, want %d", id, s, got[1].Int(), want)
	}
}

// lookup scans the overlay for one pk under (s, tx).
func lookup(tb *Table, s uint64, tx *Txn, id int64) (r []value.Value, found, visible bool) {
	tb.Snapshot(s, tx, func(pk, row []value.Value, vis bool) {
		if pk[0].Int() == id {
			found = true
			visible = vis
			r = row
		}
	})
	return
}
