package bench

import (
	"fmt"
	"runtime"
	"sort"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
	"hybridstore/internal/workload"
)

// Parallel measures the morsel-driven executor: the same scan, filtered
// aggregate, group-by and star-join queries run over one column-store
// database twice — once on a single-slot worker pool (serial) and once
// on a GOMAXPROCS-sized pool — and the speedup is reported per query.
// Both runs must produce identical result sets; a divergence fails the
// experiment. On single-core hosts the pool has one slot either way, so
// a speedup near 1.0 is the expected (and honest) reading there — the
// JSON snapshot records GOMAXPROCS and NumCPU alongside the series.
func Parallel(cfg Config) (*Result, error) {
	dimRows := 1000
	fact := workload.FactTable("pfact", dimRows)
	dim := workload.DimensionTable("pdim")
	n := cfg.scaled(300_000)

	db := engine.New()
	if err := fact.Load(db, catalog.ColumnStore, n, cfg.Seed); err != nil {
		return nil, err
	}
	if err := dim.Load(db, catalog.ColumnStore, dimRows, cfg.Seed+1); err != nil {
		return nil, err
	}
	// Merge deltas so the scans run against the compressed main
	// fragments the morsel executor partitions into blocks.
	if err := db.Compact("pfact"); err != nil {
		return nil, err
	}
	if err := db.Compact("pdim"); err != nil {
		return nil, err
	}

	nL := fact.Schema.NumColumns()
	half := value.NewInt(500) // f columns have cardinality 1000
	queries := []struct {
		name string
		q    *query.Query
	}{
		{"scan", &query.Query{
			Kind: query.Select, Table: "pfact",
			Cols: []int{0, fact.Keyfigures[0], fact.Filters[0]},
			Pred: &expr.Comparison{Col: fact.Filters[0], Op: expr.Lt, Val: half},
		}},
		{"filter-agg", &query.Query{
			Kind: query.Aggregate, Table: "pfact",
			Aggs: []agg.Spec{{Func: agg.Count, Col: -1}, {Func: agg.Sum, Col: fact.Keyfigures[0]}},
			Pred: &expr.Comparison{Col: fact.Filters[1], Op: expr.Lt, Val: half},
		}},
		{"group-by", &query.Query{
			Kind: query.Aggregate, Table: "pfact",
			Aggs:    []agg.Spec{{Func: agg.Sum, Col: fact.Keyfigures[0]}, {Func: agg.Min, Col: fact.Keyfigures[1]}},
			GroupBy: []int{fact.Filters[2]},
			Pred:    &expr.Comparison{Col: fact.Filters[0], Op: expr.Lt, Val: half},
		}},
		{"join", &query.Query{
			Kind: query.Aggregate, Table: "pfact",
			Join:    &query.Join{Table: "pdim", LeftCol: 1, RightCol: 0},
			Aggs:    []agg.Spec{{Func: agg.Sum, Col: fact.Keyfigures[0]}},
			GroupBy: []int{nL + dim.GroupBys[0]},
			Pred:    &expr.Comparison{Col: fact.Filters[0], Op: expr.Lt, Val: half},
		}},
	}

	serialPool := exec.NewPool(1)
	parallelPool := exec.NewPool(runtime.GOMAXPROCS(0))
	defer db.SetPool(exec.Default())

	res := &Result{Columns: []string{"query", "serial_ms", "parallel_ms", "speedup"}}
	for _, qc := range queries {
		db.SetPool(serialPool)
		serialRows, err := queryFingerprint(db, qc.q)
		if err != nil {
			return nil, err
		}
		tSerial, err := measureQuery(db, qc.q, cfg.Reps)
		if err != nil {
			return nil, err
		}

		db.SetPool(parallelPool)
		parallelRows, err := queryFingerprint(db, qc.q)
		if err != nil {
			return nil, err
		}
		tParallel, err := measureQuery(db, qc.q, cfg.Reps)
		if err != nil {
			return nil, err
		}

		if serialRows != parallelRows {
			return nil, fmt.Errorf("bench: parallel %s diverged from serial result", qc.name)
		}
		speedup := float64(tSerial) / float64(tParallel)
		res.AddRow([]string{
			qc.name, ms(float64(tSerial)), ms(float64(tParallel)), fmt.Sprintf("%.2fx", speedup),
		}, map[string]float64{
			"serial_ns":              float64(tSerial),
			"parallel_ns":            float64(tParallel),
			qc.name + "_speedup":     speedup,
			qc.name + "_serial_ns":   float64(tSerial),
			qc.name + "_parallel_ns": float64(tParallel),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d; pools: serial=1 slot, parallel=%d slots",
			runtime.GOMAXPROCS(0), runtime.NumCPU(), parallelPool.Size()),
		"expected shape: speedup grows with cores (≈1.0x on a single-core host); serial and parallel result sets are verified identical")
	return res, nil
}

// queryFingerprint executes q once and returns an order-insensitive
// rendering of the result rows, used to check serial/parallel agreement.
func queryFingerprint(db *engine.Database, q *query.Query) (string, error) {
	r, err := db.Exec(q)
	if err != nil {
		return "", err
	}
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		lines[i] = fmt.Sprint(row)
	}
	sort.Strings(lines)
	return fmt.Sprint(lines), nil
}
