// Package bench implements the experiment harness that regenerates every
// figure of the paper's evaluation (§5). Each experiment builds the
// paper's data setting (scaled to laptop sizes; see DESIGN.md), runs the
// paper's workloads against the live hybrid engine, and prints the same
// series the figure plots. Absolute runtimes differ from the paper's
// HANA testbed by design — the calibrated cost model and the shapes
// (linearity, crossovers, minima, ordering) are what the harness checks.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"hybridstore/internal/costmodel"
	"hybridstore/internal/costmodel/calibrate"
	"hybridstore/internal/engine"
	"hybridstore/internal/metrics"
	"hybridstore/internal/query"
)

// Config tunes an experiment run.
type Config struct {
	// Scale multiplies the default (already scaled-down) table sizes;
	// 1.0 reproduces the defaults, smaller values give quicker runs.
	Scale float64
	// Seed drives all data and workload generation.
	Seed int64
	// Reps is the number of repetitions for direct query measurements
	// (median is reported).
	Reps int
	// Model is the cost model to use; nil calibrates one (cached per
	// process) against the live engine.
	Model *costmodel.Model
	// CalibRows sizes the calibration tables when Model is nil.
	CalibRows int
	// Out receives the printed experiment table (default os.Stdout).
	Out io.Writer
	// DataDir is where the durability experiment places its temporary
	// data directories (default: the system temp dir). Point it at the
	// filesystem whose fsync behavior you want to measure.
	DataDir string
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 2012
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.CalibRows <= 0 {
		c.CalibRows = 50_000
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	return c
}

// scaled applies the scale factor with a floor.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 100 {
		v = 100
	}
	return v
}

var (
	modelMu    sync.Mutex
	modelCache = map[int]*costmodel.Model{}
)

// model returns the configured or cached calibrated model.
func (c Config) model() (*costmodel.Model, error) {
	if c.Model != nil {
		return c.Model, nil
	}
	modelMu.Lock()
	defer modelMu.Unlock()
	if m, ok := modelCache[c.CalibRows]; ok {
		return m, nil
	}
	m, err := calibrate.Calibrate(calibrate.Config{
		RefRows: c.CalibRows, Reps: c.Reps, Seed: c.Seed,
	})
	if err != nil {
		return nil, err
	}
	modelCache[c.CalibRows] = m
	return m, nil
}

// Result is a finished experiment: a printable table plus machine-
// readable series keyed by column name (used by tests and EXPERIMENTS.md
// generation).
type Result struct {
	Name    string
	Title   string
	Columns []string
	Rows    [][]string
	Series  map[string][]float64
	Notes   []string
}

// AddRow appends a formatted row and its numeric series values.
func (r *Result) AddRow(cells []string, numeric map[string]float64) {
	r.Rows = append(r.Rows, cells)
	if r.Series == nil {
		r.Series = map[string][]float64{}
	}
	for k, v := range numeric {
		r.Series[k] = append(r.Series[k], v)
	}
}

// Fprint renders the experiment table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", r.Name, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Experiment is a runnable paper experiment.
type Experiment struct {
	Name  string
	Title string
	Run   func(Config) (*Result, error)
}

// Experiments lists every reproducible figure plus the ablations, in
// presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig6a", "Estimation accuracy vs. data scale (Figure 6a)", Fig6a},
		{"fig6b", "Estimation accuracy vs. number of aggregates (Figure 6b)", Fig6b},
		{"fig7a", "Recommendation quality, single table (Figure 7a)", Fig7a},
		{"fig7b", "Recommendation quality, join queries (Figure 7b)", Fig7b},
		{"fig8", "Horizontal partitioning sweep (Figure 8)", Fig8},
		{"fig9a", "Vertical partitioning, OLAP setting (Figure 9a)", Fig9a},
		{"fig9b", "Vertical partitioning, OLTP setting (Figure 9b)", Fig9b},
		{"fig10", "TPC-H combination and comparison (Figure 10)", Fig10},
		{"ablation", "Design-choice ablations (DESIGN.md)", Ablations},
		{"durability", "Durable-mode insert throughput (WAL group commit)", Durability},
		{"concurrent-clients", "Concurrent network clients: mixed DML + analytics over TCP", ConcurrentClients},
		{"parallel", "Morsel-driven parallel execution: serial vs shared worker pool", Parallel},
		{"planner", "Cost-based planner: pushdown/join-order/top-K wins and plan-cache hit rate", Planner},
		{"ingest", "Streaming bulk ingest: COPY vs INSERT at equal durability + adaptive delta-merge soak", Ingest},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if strings.EqualFold(e.Name, name) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes one experiment by name and prints it.
func Run(name string, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	e, ok := Lookup(name)
	if !ok {
		names := make([]string, 0)
		for _, x := range Experiments() {
			names = append(names, x.Name)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", name, strings.Join(names, ", "))
	}
	// Scope the engine's statement-latency histograms to this experiment
	// so the snapshot's p50/p99 reflect it alone, then record them as
	// single-point series in the BENCH_*.json output.
	readHist := metrics.Default().Histogram("hs_engine_read_seconds", "", "seconds")
	dmlHist := metrics.Default().Histogram("hs_engine_dml_seconds", "", "seconds")
	readHist.Reset()
	dmlHist.Reset()
	res, err := e.Run(cfg)
	if err != nil {
		return nil, err
	}
	res.Name = e.Name
	res.Title = e.Title
	if res.Series == nil {
		res.Series = map[string][]float64{}
	}
	if readHist.Count() > 0 {
		res.Series["engine_read_p50_ms"] = []float64{readHist.Quantile(0.50) / 1e6}
		res.Series["engine_read_p99_ms"] = []float64{readHist.Quantile(0.99) / 1e6}
	}
	if dmlHist.Count() > 0 {
		res.Series["engine_dml_p50_ms"] = []float64{dmlHist.Quantile(0.50) / 1e6}
		res.Series["engine_dml_p99_ms"] = []float64{dmlHist.Quantile(0.99) / 1e6}
	}
	res.Fprint(cfg.Out)
	return res, nil
}

// RunAll executes every experiment, sharing one calibrated model.
func RunAll(cfg Config) ([]*Result, error) {
	cfg = cfg.withDefaults()
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	cfg.Model = m
	var out []*Result
	for _, e := range Experiments() {
		res, err := Run(e.Name, cfg)
		if err != nil {
			return out, fmt.Errorf("bench: %s: %w", e.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// runWorkload executes every query and returns the summed engine-measured
// execution time (harness overhead excluded). A GC pass beforehand keeps
// leftover garbage from a previous variant's load out of this variant's
// measurement.
func runWorkload(db *engine.Database, w *query.Workload) (time.Duration, error) {
	runtime.GC()
	var total time.Duration
	for _, q := range w.Queries {
		res, err := db.Exec(q)
		if err != nil {
			return 0, err
		}
		total += res.Duration
	}
	return total, nil
}

// measureQuery runs q reps times and returns the median duration.
func measureQuery(db *engine.Database, q *query.Query, reps int) (time.Duration, error) {
	runtime.GC()
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		res, err := db.Exec(q)
		if err != nil {
			return 0, err
		}
		times = append(times, res.Duration)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

// ms formats nanoseconds as milliseconds.
func ms(ns float64) string { return fmt.Sprintf("%.2f", ns/1e6) }

// secs formats a duration in seconds.
func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// newRng returns a deterministic random source for ablation data.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
