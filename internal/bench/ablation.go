package bench

import (
	"fmt"
	"time"

	"hybridstore/internal/advisor"
	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/colstore"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/engine"
	"hybridstore/internal/query"
	"hybridstore/internal/tpch"
	"hybridstore/internal/value"
	"hybridstore/internal/workload"
)

// Ablations benchmarks the design choices DESIGN.md calls out: the column
// store's per-code aggregation fast path, the write-optimized delta, the
// advisor's search strategy, and the cost model's compression adjustment.
func Ablations(cfg Config) (*Result, error) {
	res := &Result{Columns: []string{"ablation", "baseline", "ablated", "effect"}}
	if err := ablateCodeAggregation(cfg, res); err != nil {
		return nil, err
	}
	if err := ablateDelta(cfg, res); err != nil {
		return nil, err
	}
	if err := ablateSearch(cfg, res); err != nil {
		return nil, err
	}
	if err := ablateCompressionAdjustment(cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// colstoreTable builds a raw column-store table with a controllable
// distinct count on the aggregated column.
func colstoreTable(n, distinct int, seed int64) *colstore.Table {
	spec := workload.StandardTable("exp")
	t := colstore.New(spec.Schema)
	rows := make([][]value.Value, 0, 4096)
	rng := newRng(seed)
	for id := 0; id < n; id++ {
		row := spec.RowGen(rng, int64(id))
		row[spec.Keyfigures[0]] = value.NewDouble(float64(id % distinct))
		rows = append(rows, row)
		if len(rows) == 4096 {
			if err := t.Insert(rows); err != nil {
				panic(err)
			}
			rows = rows[:0]
		}
	}
	if len(rows) > 0 {
		if err := t.Insert(rows); err != nil {
			panic(err)
		}
	}
	t.Merge()
	return t
}

// ablateCodeAggregation compares the per-code weighted aggregation fast
// path against naive tuple-at-a-time accumulation over the same column
// store.
func ablateCodeAggregation(cfg Config, res *Result) error {
	n := cfg.scaled(200_000)
	t := colstoreTable(n, 64, cfg.Seed)
	spec := workload.StandardTable("exp")
	col := spec.Keyfigures[0]
	aggs := []agg.Spec{{Func: agg.Sum, Col: col}}

	fast := time.Duration(0)
	naive := time.Duration(0)
	var fastSum, naiveSum float64
	for i := 0; i < cfg.Reps; i++ {
		start := time.Now()
		r := t.Aggregate(aggs, nil, nil)
		fast += time.Since(start)
		fastSum = r.Rows()[0][0].Double()

		start = time.Now()
		var acc agg.Acc
		t.Scan(nil, []int{col}, func(rid int, row []value.Value) bool {
			acc.Add(row[col])
			return true
		})
		naive += time.Since(start)
		naiveSum = acc.Final(agg.Sum).Double()
	}
	if fastSum != naiveSum {
		return fmt.Errorf("ablation: per-code aggregation diverged: %v vs %v", fastSum, naiveSum)
	}
	res.AddRow([]string{
		"per-code aggregation",
		fmt.Sprintf("%.2fms", fast.Seconds()*1000/float64(cfg.Reps)),
		fmt.Sprintf("%.2fms (decode per row)", naive.Seconds()*1000/float64(cfg.Reps)),
		fmt.Sprintf("%.1fx", float64(naive)/float64(fast)),
	}, map[string]float64{"codeagg_speedup": float64(naive) / float64(fast)})
	return nil
}

// ablateDelta compares insert throughput with the write-optimized delta
// against merging after every batch (no delta amortization).
func ablateDelta(cfg Config, res *Result) error {
	n := cfg.scaled(40_000)
	spec := workload.StandardTable("exp")
	load := func(noDelta bool) time.Duration {
		t := colstore.New(spec.Schema)
		t.AutoMerge = !noDelta
		rng := newRng(cfg.Seed)
		start := time.Now()
		batch := make([][]value.Value, 0, 512)
		for id := 0; id < n; id++ {
			batch = append(batch, spec.RowGen(rng, int64(id)))
			if len(batch) == 512 {
				if err := t.Insert(batch); err != nil {
					panic(err)
				}
				if noDelta {
					t.Merge()
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			if err := t.Insert(batch); err != nil {
				panic(err)
			}
		}
		return time.Since(start)
	}
	withDelta := load(false)
	withoutDelta := load(true)
	res.AddRow([]string{
		"write-optimized delta",
		fmt.Sprintf("%.0fms load", withDelta.Seconds()*1000),
		fmt.Sprintf("%.0fms (merge per batch)", withoutDelta.Seconds()*1000),
		fmt.Sprintf("%.1fx", float64(withoutDelta)/float64(withDelta)),
	}, map[string]float64{"delta_speedup": float64(withoutDelta) / float64(withDelta)})
	return nil
}

// ablateSearch compares exact enumeration with local search on the TPC-H
// placement problem.
func ablateSearch(cfg Config, res *Result) error {
	m, err := cfg.model()
	if err != nil {
		return err
	}
	sf := 0.004 * cfg.Scale
	db := engine.New()
	g, err := tpch.Load(db, sf, cfg.Seed, catalog.ColumnStore)
	if err != nil {
		return err
	}
	for _, t := range tpch.TableNames {
		if _, err := db.CollectStats(t); err != nil {
			return err
		}
	}
	info := advisor.InfoFromCatalog(db.Catalog())
	w := tpch.GenWorkload(g, tpch.WorkloadConfig{Queries: 1000, OLAPFraction: 0.01, Seed: cfg.Seed})

	exact := advisor.New(m)
	start := time.Now()
	exactRec := exact.RecommendTables(w, info, nil)
	exactTime := time.Since(start)

	local := advisor.New(m)
	local.Config.ExactLimit = 0 // force local search
	start = time.Now()
	localRec := local.RecommendTables(w, info, nil)
	localTime := time.Since(start)

	gap := 0.0
	if exactRec.EstimatedCost > 0 {
		gap = (localRec.EstimatedCost - exactRec.EstimatedCost) / exactRec.EstimatedCost
	}
	res.AddRow([]string{
		"placement search",
		fmt.Sprintf("exact %.1fms", exactTime.Seconds()*1000),
		fmt.Sprintf("local %.1fms", localTime.Seconds()*1000),
		fmt.Sprintf("cost gap %.2f%%", gap*100),
	}, map[string]float64{"search_gap": gap})
	return nil
}

// ablateCompressionAdjustment measures the column-store estimation error
// with and without f_compression across tables of different
// compressibility.
func ablateCompressionAdjustment(cfg Config, res *Result) error {
	m, err := cfg.model()
	if err != nil {
		return err
	}
	flat := *m
	flat.CS.CompressionF = costmodel.PiecewiseFn{Xs: []float64{0, 1}, Ys: []float64{1, 1}}

	spec := workload.StandardTable("exp")
	col := spec.Keyfigures[0]
	q := &query.Query{Kind: query.Aggregate, Table: "exp", Aggs: []agg.Spec{{Func: agg.Sum, Col: col}}}
	n := cfg.scaled(150_000)
	var withAdj, withoutAdj, actuals []float64
	for _, distinct := range []int{4, 256, 16384, n} {
		t := colstoreTable(n, distinct, cfg.Seed)
		// Wrap in an engine to reuse stats collection.
		db := engine.New()
		ts := workload.StandardTable("exp")
		if err := db.CreateTable(ts.Schema, catalog.ColumnStore); err != nil {
			return err
		}
		rows := make([][]value.Value, 0, 4096)
		t.Scan(nil, nil, func(rid int, row []value.Value) bool {
			cp := make([]value.Value, len(row))
			copy(cp, row)
			rows = append(rows, cp)
			if len(rows) == 4096 {
				if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "exp", Rows: rows}); err != nil {
					panic(err)
				}
				rows = rows[:0]
			}
			return true
		})
		if len(rows) > 0 {
			if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "exp", Rows: rows}); err != nil {
				return err
			}
		}
		if _, err := db.CollectStats("exp"); err != nil {
			return err
		}
		info := advisor.InfoFromCatalog(db.Catalog())
		place := costmodel.Placement{"exp": catalog.ColumnStore}
		act, err := measureQuery(db, q, cfg.Reps)
		if err != nil {
			return err
		}
		withAdj = append(withAdj, m.EstimateQuery(q, info, place))
		withoutAdj = append(withoutAdj, flat.EstimateQuery(q, info, place))
		actuals = append(actuals, float64(act))
	}
	errWith := costmodel.MeanAbsError(withAdj, actuals)
	errWithout := costmodel.MeanAbsError(withoutAdj, actuals)
	res.AddRow([]string{
		"compression adjustment",
		fmt.Sprintf("error %.1f%%", errWith*100),
		fmt.Sprintf("error %.1f%% (constant f_compression)", errWithout*100),
		fmt.Sprintf("%+.1fpp", (errWithout-errWith)*100),
	}, map[string]float64{"compr_err_with": errWith, "compr_err_without": errWithout})
	return nil
}
