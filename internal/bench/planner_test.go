package bench

import "testing"

// TestPlannerExperimentSmoke runs the planner experiment at a reduced
// scale and enforces its acceptance floor: the plan cache must serve at
// least 90% of the repeated-statement workload, and at least one
// pushdown- or join-order-sensitive query must run >= 2x faster planned
// than degraded. The top-K series is informational (its win depends on
// the sort-to-scan ratio at this scale) but must not be slower.
func TestPlannerExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("planner experiment smoke skipped in -short")
	}
	cfg := quickCfg()
	cfg.Scale = 0.25
	cfg.Reps = 5
	res, err := Planner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hit := res.Series["plan_cache_hit_rate"]
	if len(hit) != 1 {
		t.Fatal("missing plan_cache_hit_rate series")
	}
	if hit[0] < 0.9 {
		t.Errorf("plan-cache hit rate %.2f, want >= 0.90", hit[0])
	}
	best := 0.0
	for _, q := range []string{"pushdown", "join-order"} {
		sp := res.Series[q+"_speedup"]
		if len(sp) != 1 {
			t.Fatalf("missing %s speedup series", q)
		}
		if sp[0] > best {
			best = sp[0]
		}
	}
	if best < 2.0 {
		t.Errorf("best pushdown/join-order speedup %.2fx, want >= 2x", best)
	}
	if sp := res.Series["topk_speedup"]; len(sp) == 1 && sp[0] < 0.9 {
		t.Errorf("top-K slower than full sort beyond tolerance (%.2fx)", sp[0])
	}
}
