package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
	"hybridstore/internal/wal"
)

// durabilityRowBatch is the rows-per-INSERT-statement the durability
// experiment uses: one WAL record (and one group-commit slot) per
// statement, matching how bulk loaders drive the engine.
const durabilityRowBatch = 512

func durabilitySchema() *schema.Table {
	return schema.MustNew("dinsert", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "grp", Type: value.Integer},
		{Name: "amount", Type: value.Double},
		{Name: "note", Type: value.Varchar},
	}, "id")
}

func durabilityRow(id int64) []value.Value {
	return []value.Value{
		value.NewBigint(id),
		value.NewInt(id % 97),
		value.NewDouble(float64(id) * 0.5),
		value.NewVarchar(fmt.Sprintf("n%02d", id%50)),
	}
}

// durabilityInsert drives writers concurrent inserters, each loading its
// own id range in durabilityRowBatch-row statements, and returns the
// aggregate rows/second.
func durabilityInsert(db *engine.Database, writers, totalRows int) (float64, error) {
	perWriter := totalRows / writers
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * perWriter)
			for off := 0; off < perWriter; off += durabilityRowBatch {
				n := durabilityRowBatch
				if off+n > perWriter {
					n = perWriter - off
				}
				rows := make([][]value.Value, n)
				for i := 0; i < n; i++ {
					rows[i] = durabilityRow(base + int64(off+i))
				}
				if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "dinsert", Rows: rows}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, err
	}
	return float64(writers*perWriter) / time.Since(start).Seconds(), nil
}

// Durability measures the cost of crash safety: insert throughput of
// the WAL-backed engine against the in-memory engine, across writer
// counts and group-commit batch sizes. The group-commit knob is what
// the experiment sweeps — batch 1 pays one fsync per statement, the
// default batch lets concurrent writers share syncs.
func Durability(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	totalRows := cfg.scaled(40_000)
	res := &Result{
		Columns: []string{"mode", "writers", "group-commit", "rows/s", "vs in-memory"},
		Notes: []string{
			fmt.Sprintf("%d rows per run, %d-row insert statements; ratio is in-memory-rows/s ÷ mode-rows/s", totalRows, durabilityRowBatch),
			"acceptance: durable throughput within 2x of in-memory at the default group-commit batch",
		},
	}

	type setting struct {
		name    string
		writers int
		durable bool
		opts    engine.Options
	}
	settings := []setting{
		{"in-memory", 1, false, engine.Options{}},
		{"durable", 1, true, engine.Options{}},
		{"in-memory", 4, false, engine.Options{}},
		{"durable batch=1", 4, true, engine.Options{GroupCommit: 1}},
		{"durable batch=16", 4, true, engine.Options{GroupCommit: 16}},
		{fmt.Sprintf("durable batch=%d (default)", wal.DefaultMaxBatch), 4, true, engine.Options{}},
	}

	baseline := map[int]float64{} // writers -> in-memory rows/s
	for _, s := range settings {
		var db *engine.Database
		var err error
		if s.durable {
			dir, derr := os.MkdirTemp(cfg.DataDir, "hsbench-durable-*")
			if derr != nil {
				return nil, derr
			}
			defer os.RemoveAll(dir)
			db, err = engine.OpenOptions(dir, s.opts)
		} else {
			db = engine.New()
		}
		if err != nil {
			return nil, err
		}
		if err := db.CreateTable(durabilitySchema(), catalog.RowStore); err != nil {
			return nil, err
		}
		rps, err := durabilityInsert(db, s.writers, totalRows)
		if err != nil {
			return nil, err
		}
		if err := db.Close(); err != nil {
			return nil, err
		}
		batch := "-"
		if s.durable {
			b := s.opts.GroupCommit
			if b == 0 {
				b = wal.DefaultMaxBatch
			}
			batch = fmt.Sprintf("%d", b)
		}
		ratio := "1.00"
		if !s.durable {
			baseline[s.writers] = rps
		} else if base := baseline[s.writers]; base > 0 {
			ratio = fmt.Sprintf("%.2f", base/rps)
		}
		res.AddRow(
			[]string{s.name, fmt.Sprintf("%d", s.writers), batch, fmt.Sprintf("%.0f", rps), ratio},
			map[string]float64{"rows/s": rps},
		)
	}
	return res, nil
}
