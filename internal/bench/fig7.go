package bench

import (
	"fmt"
	"time"

	"hybridstore/internal/advisor"
	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/engine"
	"hybridstore/internal/workload"
)

// olapFractions7 is the sweep of Figure 7: 0%..5%.
var olapFractions7 = []float64{0, 0.0125, 0.025, 0.0375, 0.05}

// Fig7a reproduces Figure 7(a): 500-query mixed workloads against the
// single experiment table at varying OLAP fractions, run with the table
// in the row store, the column store, and the store recommended by the
// advisor. The paper's table has 10m tuples; ours 150k.
func Fig7a(cfg Config) (*Result, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	adv := advisor.New(m)
	n := cfg.scaled(150_000)
	spec := workload.StandardTable("exp")

	// Statistics for the advisor come from a one-off load (data
	// characteristics are store-independent).
	statsDB := engine.New()
	if err := spec.Load(statsDB, catalog.ColumnStore, n, cfg.Seed); err != nil {
		return nil, err
	}
	if _, err := statsDB.CollectStats("exp"); err != nil {
		return nil, err
	}
	info := advisor.InfoFromCatalog(statsDB.Catalog())

	res := &Result{Columns: []string{"olap_frac", "rs_only_s", "cs_only_s", "advisor_s", "recommended"}}
	for _, frac := range olapFractions7 {
		w := workload.GenMixed(spec, workload.MixConfig{
			Queries: 500, OLAPFraction: frac, TableRows: n,
			UpdateRowsPerQuery: 20, Seed: cfg.Seed + int64(frac*10000),
		})
		rec := adv.RecommendTables(w, info, nil)
		times := map[catalog.StoreKind]time.Duration{}
		for _, store := range []catalog.StoreKind{catalog.RowStore, catalog.ColumnStore} {
			db := engine.New()
			if err := spec.Load(db, store, n, cfg.Seed); err != nil {
				return nil, err
			}
			t, err := runWorkload(db, w)
			if err != nil {
				return nil, err
			}
			times[store] = t
		}
		chosen := rec.Placement.StoreOf("exp")
		res.AddRow([]string{
			fmt.Sprintf("%.2f%%", frac*100),
			secs(times[catalog.RowStore]),
			secs(times[catalog.ColumnStore]),
			secs(times[chosen]),
			chosen.String(),
		}, map[string]float64{
			"olap_frac": frac,
			"rs_only":   float64(times[catalog.RowStore]),
			"cs_only":   float64(times[catalog.ColumnStore]),
			"advisor":   float64(times[chosen]),
		})
	}
	res.Notes = append(res.Notes,
		"expected shape: row store cheaper at 0% OLAP with steeper growth; the advisor line tracks the minimum (paper Fig. 7a)",
	)
	return res, nil
}

// Fig7b reproduces Figure 7(b): the star-schema join workloads. The
// dimension table (1000 rows) is pinned to the row store "based on
// preceding measurements" (paper §5.3); the advisor decides the fact
// table's store. The paper's fact table has 20m tuples; ours 200k.
func Fig7b(cfg Config) (*Result, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	adv := advisor.New(m)
	factRows := cfg.scaled(200_000)
	const dimRows = 1000
	dim := workload.DimensionTable("dim")
	fact := workload.FactTable("fact", dimRows)

	statsDB := engine.New()
	if err := fact.Load(statsDB, catalog.ColumnStore, factRows, cfg.Seed); err != nil {
		return nil, err
	}
	if err := dim.Load(statsDB, catalog.RowStore, dimRows, cfg.Seed+1); err != nil {
		return nil, err
	}
	for _, t := range []string{"fact", "dim"} {
		if _, err := statsDB.CollectStats(t); err != nil {
			return nil, err
		}
	}
	info := advisor.InfoFromCatalog(statsDB.Catalog())
	pinned := costmodel.Placement{"dim": catalog.RowStore}

	res := &Result{Columns: []string{"olap_frac", "rs_only_s", "cs_only_s", "advisor_s", "recommended"}}
	for _, frac := range olapFractions7 {
		w := workload.GenJoinMixed(fact, dim, workload.JoinMixConfig{
			Queries: 500, OLAPFraction: frac,
			FactRows: factRows, DimRows: dimRows,
			UpdateRowsPerQuery: 20, Seed: cfg.Seed + int64(frac*10000),
		})
		rec := adv.RecommendTables(w, info, pinned)
		times := map[catalog.StoreKind]time.Duration{}
		for _, store := range []catalog.StoreKind{catalog.RowStore, catalog.ColumnStore} {
			db := engine.New()
			if err := fact.Load(db, store, factRows, cfg.Seed); err != nil {
				return nil, err
			}
			if err := dim.Load(db, catalog.RowStore, dimRows, cfg.Seed+1); err != nil {
				return nil, err
			}
			t, err := runWorkload(db, w)
			if err != nil {
				return nil, err
			}
			times[store] = t
		}
		chosen := rec.Placement.StoreOf("fact")
		res.AddRow([]string{
			fmt.Sprintf("%.2f%%", frac*100),
			secs(times[catalog.RowStore]),
			secs(times[catalog.ColumnStore]),
			secs(times[chosen]),
			chosen.String(),
		}, map[string]float64{
			"olap_frac": frac,
			"rs_only":   float64(times[catalog.RowStore]),
			"cs_only":   float64(times[catalog.ColumnStore]),
			"advisor":   float64(times[chosen]),
		})
	}
	res.Notes = append(res.Notes,
		"dimension table pinned to the row store as in the paper",
		"expected shape: like Fig. 7a with an earlier crossover to the column store (paper Fig. 7b)",
	)
	return res, nil
}
