package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/client"
	"hybridstore/internal/engine"
	"hybridstore/internal/expr"
	"hybridstore/internal/metrics"
	"hybridstore/internal/plan"
	"hybridstore/internal/query"
	"hybridstore/internal/server"
	"hybridstore/internal/value"
	"hybridstore/internal/workload"
)

// Planner measures the cost-based planner end to end.
//
// Part 1 (plan quality): pushdown-, join-order- and top-K-sensitive
// queries over a star schema run twice — once as planned and once with
// the planner decision forcibly degraded (pushdown off, build side
// flipped, top-K replaced by full sort). Both variants must return
// identical results; the speedup attributes the win to the decision
// itself, not to unrelated execution differences.
//
// Part 2 (plan cache): an in-process hsqld serves the same engine; a
// client prepares a handful of parameterized statements and executes
// each repeatedly. Reported: the server plan-cache hit rate (first
// execution per statement plans, the rest must reuse) and the planning
// latency distribution from hs_planning_seconds.
func Planner(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	dimRows := cfg.scaled(20_000)
	factRows := cfg.scaled(100_000)

	fact := workload.FactTable("pfact", dimRows)
	dim := workload.DimensionTable("pdim")

	db := engine.New()
	if err := fact.Load(db, catalog.ColumnStore, factRows, cfg.Seed); err != nil {
		return nil, err
	}
	if err := dim.Load(db, catalog.ColumnStore, dimRows, cfg.Seed+1); err != nil {
		return nil, err
	}

	nL := fact.Schema.NumColumns()
	forceLeft := true
	cases := []struct {
		name     string
		q        *query.Query
		degraded plan.Options
		ordered  bool // compare row order too (ORDER BY present)
	}{
		{
			// Only ~1% of dimension rows pass d_attr < 10; pushed below
			// the join the build side shrinks from dimRows to ~dimRows/100
			// and probe emissions drop accordingly. Degraded, the full
			// dimension builds and every fact row joins before filtering.
			name: "pushdown",
			q: &query.Query{
				Kind: query.Select, Table: "pfact",
				Join: &query.Join{Table: "pdim", LeftCol: 1, RightCol: 0},
				Cols: []int{0, 2, nL + 4},
				Pred: &expr.Comparison{Col: nL + 5, Op: expr.Lt, Val: value.NewInt(10)},
			},
			degraded: plan.Options{DisablePushdown: true},
		},
		{
			// The dimension is the smaller input; the planner builds it.
			// Degraded, the fact side builds a hash table of every fact
			// row instead.
			name: "join-order",
			q: &query.Query{
				Kind: query.Aggregate, Table: "pfact",
				Join: &query.Join{Table: "pdim", LeftCol: 1, RightCol: 0},
				// Integer SUM: exact regardless of accumulation order, so
				// the build-side variants stay bit-identical.
				Aggs:    []agg.Spec{{Func: agg.Sum, Col: 6}},
				GroupBy: []int{nL + 1},
			},
			degraded: plan.Options{ForceBuildLeft: &forceLeft},
		},
		{
			// ORDER BY + LIMIT: the planner's single-pass top-K keeps 10
			// rows in a bounded heap; degraded, every matching row is
			// materialized and fully sorted first.
			name: "topk",
			q: &query.Query{
				Kind: query.Select, Table: "pfact",
				Cols:    []int{0, 2},
				OrderBy: []query.Order{{Col: 2, Desc: true}},
				Limit:   10,
			},
			degraded: plan.Options{DisableTopK: true},
			ordered:  true,
		},
	}

	res := &Result{
		Columns: []string{"query", "planned_ms", "degraded_ms", "speedup", "degradation"},
		Notes: []string{
			fmt.Sprintf("star schema: %d fact rows joining %d dimension rows, column store", factRows, dimRows),
			"each query runs planned and with one planner decision forcibly degraded; results are verified identical",
		},
	}
	degradeLabel := []string{"pushdown off", "build side flipped", "full sort instead of top-K"}
	for i, tc := range cases {
		planned, err := db.PlanQueryOptions(tc.q, plan.Options{})
		if err != nil {
			return nil, err
		}
		degraded, err := db.PlanQueryOptions(tc.q, tc.degraded)
		if err != nil {
			return nil, err
		}
		fpPlanned, err := plannedFingerprint(db, tc.q, planned, tc.ordered)
		if err != nil {
			return nil, err
		}
		fpDegraded, err := plannedFingerprint(db, tc.q, degraded, tc.ordered)
		if err != nil {
			return nil, err
		}
		if fpPlanned != fpDegraded {
			return nil, fmt.Errorf("bench: %s: planned and degraded plans disagree on the result", tc.name)
		}
		tPlanned, err := measurePlanned(db, tc.q, planned, cfg.Reps)
		if err != nil {
			return nil, err
		}
		tDegraded, err := measurePlanned(db, tc.q, degraded, cfg.Reps)
		if err != nil {
			return nil, err
		}
		speedup := float64(tDegraded) / float64(tPlanned)
		res.AddRow([]string{
			tc.name, ms(float64(tPlanned)), ms(float64(tDegraded)),
			fmt.Sprintf("%.2fx", speedup), degradeLabel[i],
		}, map[string]float64{
			tc.name + "_planned_ns":  float64(tPlanned),
			tc.name + "_degraded_ns": float64(tDegraded),
			tc.name + "_speedup":     speedup,
		})
	}

	// Part 2: plan-cache behavior over the wire.
	hitRate, planP50, planP99, reps, stmts, err := plannerCacheWorkload(db, cfg)
	if err != nil {
		return nil, err
	}
	res.AddRow([]string{
		"plan-cache", fmt.Sprintf("p50 %.1fus", planP50/1e3), fmt.Sprintf("p99 %.1fus", planP99/1e3),
		fmt.Sprintf("%.1f%% hits", 100*hitRate), fmt.Sprintf("%d stmts x %d reps", stmts, reps),
	}, map[string]float64{
		"plan_cache_hit_rate": hitRate,
		"planning_p50_ns":     planP50,
		"planning_p99_ns":     planP99,
	})
	res.Notes = append(res.Notes,
		fmt.Sprintf("plan cache: %d prepared statements executed %d times each over TCP; first execution plans, the rest must hit", stmts, reps),
		"acceptance: >= 2x speedup on a pushdown- or join-order-sensitive query, >= 90% plan-cache hit rate")
	return res, nil
}

// plannedFingerprint executes q through p once and renders the result
// rows (order-sensitively when the query is ordered) for differential
// comparison between plan variants.
func plannedFingerprint(db *engine.Database, q *query.Query, p *plan.Plan, ordered bool) (string, error) {
	r, err := db.ExecPlannedContext(context.Background(), q, p)
	if err != nil {
		return "", err
	}
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		lines[i] = fmt.Sprint(row)
	}
	if !ordered {
		sort.Strings(lines)
	}
	return fmt.Sprint(lines), nil
}

// measurePlanned runs q through the given plan reps times and returns
// the median engine-measured duration.
func measurePlanned(db *engine.Database, q *query.Query, p *plan.Plan, reps int) (time.Duration, error) {
	runtime.GC()
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		res, err := db.ExecPlannedContext(context.Background(), q, p)
		if err != nil {
			return 0, err
		}
		times = append(times, res.Duration)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

// plannerCacheWorkload drives the server-side plan cache: prepare a
// fixed set of parameterized read statements and execute each reps
// times. Returns the plan-cache hit rate and the planning latency
// quantiles observed during the workload.
func plannerCacheWorkload(db *engine.Database, cfg Config) (hitRate, planP50, planP99 float64, reps, stmts int, err error) {
	srv, err := server.Serve(db, "127.0.0.1:0", server.Config{MaxSessions: 8})
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer srv.Shutdown(context.Background())

	planHist := metrics.Default().Histogram("hs_planning_seconds",
		"query planning latency (plan IR construction and costing)", "seconds")
	planHist.Reset()
	hits0, miss0, _ := srv.PlanCacheStats()

	conn, err := client.Dial(srv.Addr().String(), client.Options{Name: "planner-bench"})
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer conn.Close()
	ctx := context.Background()

	texts := []string{
		"SELECT id, k0 FROM pfact WHERE f0 < ? LIMIT 50;",
		"SELECT SUM(k0) FROM pfact WHERE f1 < ?;",
		"SELECT COUNT(*) FROM pfact GROUP BY f2;",
		"SELECT id, k1 FROM pfact WHERE f3 < ? ORDER BY k1 DESC LIMIT 10;",
		"SELECT SUM(k0) FROM pfact JOIN pdim ON dimkey = dkey GROUP BY d_g0;",
	}
	reps = 20
	for _, text := range texts {
		st, err := conn.Prepare(ctx, text)
		if err != nil {
			return 0, 0, 0, 0, 0, fmt.Errorf("prepare %q: %w", text, err)
		}
		for i := 0; i < reps; i++ {
			var args []value.Value
			if st.NumParams() > 0 {
				args = []value.Value{value.NewInt(int64(100 + i))}
			}
			if _, err := st.Exec(ctx, args...); err != nil {
				return 0, 0, 0, 0, 0, fmt.Errorf("exec %q: %w", text, err)
			}
		}
	}

	hits, miss, _ := srv.PlanCacheStats()
	dh, dm := hits-hits0, miss-miss0
	if dh+dm > 0 {
		hitRate = float64(dh) / float64(dh+dm)
	}
	return hitRate, planHist.Quantile(0.50), planHist.Quantile(0.99), reps, len(texts), nil
}
