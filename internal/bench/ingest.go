package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"hybridstore/internal/advisor"
	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/client"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/engine"
	"hybridstore/internal/migrate"
	"hybridstore/internal/monitor"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/server"
	"hybridstore/internal/value"
)

func ingestSchema(name string) *schema.Table {
	return schema.MustNew(name, []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "grp", Type: value.Integer},
		{Name: "amount", Type: value.Double},
		{Name: "note", Type: value.Varchar},
	}, "id")
}

func ingestRow(id int64) []value.Value {
	return []value.Value{
		value.NewBigint(id),
		value.NewInt(id % 97),
		value.NewDouble(float64(id) * 0.5),
		value.NewVarchar(fmt.Sprintf("n%02d", id%50)),
	}
}

// ingestDifferential checks the table holds ids [0, n) exactly once:
// COUNT catches lost rows, the primary key plus COUNT catches
// duplicates, and the id SUM/MIN/MAX pin the exact set.
func ingestDifferential(db *engine.Database, table string, n int64) error {
	res, err := db.Exec(&query.Query{Kind: query.Aggregate, Table: table,
		Aggs: []agg.Spec{{Func: agg.Count, Col: -1}, {Func: agg.Sum, Col: 0}, {Func: agg.Min, Col: 0}, {Func: agg.Max, Col: 0}}})
	if err != nil {
		return err
	}
	row := res.Rows[0]
	if got := row[0].Int(); got != n {
		return fmt.Errorf("differential FAILED: %d rows durable, want %d (lost or duplicated)", got, n)
	}
	wantSum := n * (n - 1) / 2
	if got := int64(row[1].Double()); got != wantSum {
		return fmt.Errorf("differential FAILED: id sum %d, want %d", got, wantSum)
	}
	if lo, hi := row[2].Int(), row[3].Int(); lo != 0 || hi != n-1 {
		return fmt.Errorf("differential FAILED: id range [%d,%d], want [0,%d]", lo, hi, n-1)
	}
	return nil
}

// Ingest is the streaming bulk-ingest experiment: against one durable
// (fsync-on-commit) engine served over TCP, it measures single-statement
// INSERT throughput vs the COPY fast path at equal durability, runs a
// post-phase differential check (zero lost, zero duplicated rows), and
// finishes with a sustained-ingest soak into a column store while the
// adaptive delta-merge cadence keeps the write-optimized delta bounded.
func Ingest(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	insertRows := cfg.scaled(4_000)
	copyRows := cfg.scaled(400_000)
	soakFor := time.Duration(float64(10*time.Second) * cfg.Scale)
	if soakFor < time.Second {
		soakFor = time.Second
	}

	dir, err := os.MkdirTemp(cfg.DataDir, "hsbench-ingest-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := engine.OpenOptions(dir, engine.Options{}) // production durability: fsync group commit
	if err != nil {
		return nil, err
	}
	mon := monitor.New(db, monitor.DefaultConfig())
	if err := db.CreateTable(ingestSchema("ing"), catalog.RowStore); err != nil {
		return nil, err
	}
	srv, err := server.Serve(db, "127.0.0.1:0", server.Config{})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	defer func() {
		sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx) //nolint:errcheck // teardown
	}()

	c, err := client.Dial(srv.Addr().String(), client.Options{Name: "ingest"})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	res := &Result{
		Columns: []string{"path", "rows", "seconds", "rows/s", "vs INSERT"},
		Notes: []string{
			"one durable engine over TCP; INSERT pays one group-commit wait per row, COPY one per frame (~4096 rows)",
			"acceptance: durable COPY >= 5x single-statement INSERT throughput at equal durability",
		},
	}

	// Phase 1: single-statement prepared INSERTs, one row per statement —
	// the pre-COPY ingest ceiling.
	ins, err := c.Prepare(ctx, "INSERT INTO ing VALUES (?, ?, ?, ?)")
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < insertRows; i++ {
		if _, err := ins.Exec(ctx, ingestRow(int64(i))...); err != nil {
			return nil, err
		}
	}
	insElapsed := time.Since(start)
	insRPS := float64(insertRows) / insElapsed.Seconds()
	res.AddRow(
		[]string{"INSERT", fmt.Sprintf("%d", insertRows), secs(insElapsed), fmt.Sprintf("%.0f", insRPS), "1.00"},
		map[string]float64{"insert rows/s": insRPS},
	)

	// Phase 2: the COPY streaming fast path, same table, same durability.
	cp, err := c.CopyIn(ctx, "ing", 4)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < copyRows; i++ {
		if err := cp.Send(ingestRow(int64(insertRows + i))...); err != nil {
			return nil, err
		}
	}
	acked, err := cp.Close()
	if err != nil {
		return nil, err
	}
	copyElapsed := time.Since(start)
	if acked != copyRows {
		return nil, fmt.Errorf("ingest: CopyIn acknowledged %d rows, want %d", acked, copyRows)
	}
	copyRPS := float64(copyRows) / copyElapsed.Seconds()
	ratio := copyRPS / insRPS
	res.AddRow(
		[]string{"COPY", fmt.Sprintf("%d", copyRows), secs(copyElapsed), fmt.Sprintf("%.0f", copyRPS), fmt.Sprintf("%.2f", ratio)},
		map[string]float64{"copy rows/s": copyRPS, "copy vs insert": ratio},
	)
	res.Notes = append(res.Notes, fmt.Sprintf("COPY vs INSERT at equal durability: %.1fx (acceptance >= 5x)", ratio))

	// Differential: exactly the acknowledged rows, no more, no less.
	if err := ingestDifferential(db, "ing", int64(insertRows+copyRows)); err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, fmt.Sprintf("differential check: PASS (%d rows, ids exact)", insertRows+copyRows))

	// Phase 3: sustained-ingest soak into a column store with the
	// adaptive merge cadence active. The delta must stay bounded — merges
	// keep folding it into read-optimized fragments mid-stream — instead
	// of growing with everything ingested.
	const mergeThreshold = 50_000
	if err := db.CreateTable(ingestSchema("soakt"), catalog.ColumnStore); err != nil {
		return nil, err
	}
	mgr := migrate.NewManager(db, advisor.New(costmodel.DefaultModel()), mon, migrate.Config{
		CompactDeltaRows:   mergeThreshold,
		CompactMinInterval: 100 * time.Millisecond,
		MinWindowQueries:   1 << 30, // soak exercises compaction, not layout moves
	})
	if err := mgr.AutoAdvise(time.Second, -1); err != nil {
		return nil, err
	}
	defer mgr.Stop()

	maxDelta := 0
	sampleDone := make(chan struct{})
	samplerStop := make(chan struct{})
	go func() {
		defer close(sampleDone)
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-samplerStop:
				return
			case <-tick.C:
				if d, err := db.DeltaRows("soakt"); err == nil && d > maxDelta {
					maxDelta = d
				}
			}
		}
	}()
	soak, err := c.CopyIn(ctx, "soakt", 4)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	deadline := start.Add(soakFor)
	soaked := 0
	for time.Now().Before(deadline) {
		if err := soak.Send(ingestRow(int64(soaked))...); err != nil {
			return nil, err
		}
		soaked++
	}
	soakAcked, err := soak.Close()
	if err != nil {
		return nil, err
	}
	soakElapsed := time.Since(start)
	close(samplerStop)
	<-sampleDone
	if soakAcked != soaked {
		return nil, fmt.Errorf("ingest soak: %d rows acked, want %d", soakAcked, soaked)
	}
	if err := ingestDifferential(db, "soakt", int64(soaked)); err != nil {
		return nil, err
	}
	merges := 0
	for _, ev := range mgr.Events() {
		if ev.Action == "compact" {
			merges++
		}
	}
	// Bounded means the delta never accumulated the whole stream: either
	// it stayed under the merge threshold outright, or background merges
	// ran and kept its peak well below the total ingested.
	bounded := maxDelta <= mergeThreshold || (merges > 0 && maxDelta < soaked)
	if !bounded {
		return nil, fmt.Errorf("ingest soak: delta unbounded (peak %d rows over %d ingested, %d merges)", maxDelta, soaked, merges)
	}
	soakRPS := float64(soaked) / soakElapsed.Seconds()
	res.AddRow(
		[]string{"COPY soak", fmt.Sprintf("%d", soaked), secs(soakElapsed), fmt.Sprintf("%.0f", soakRPS), fmt.Sprintf("%.2f", soakRPS/insRPS)},
		map[string]float64{"soak rows/s": soakRPS, "soak peak delta rows": float64(maxDelta), "soak merges": float64(merges)},
	)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"soak: %v sustained ingest into a column store; peak delta %d rows, %d background merges (threshold %d) — bounded: %v",
		soakElapsed.Round(time.Millisecond), maxDelta, merges, mergeThreshold, bounded))
	return res, nil
}
