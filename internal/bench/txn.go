package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hybridstore/internal/catalog"
	"hybridstore/internal/client"
	"hybridstore/internal/engine"
	"hybridstore/internal/metrics"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/server"
	"hybridstore/internal/value"
)

func txnSchema() *schema.Table {
	return schema.MustNew("acct", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "grp", Type: value.Integer},
		{Name: "bal", Type: value.Double},
	}, "id")
}

// txnThinkTime is the modeled application work inside each transfer
// transaction, between its two UPDATE legs. Interactive transactions
// are open across such client-side gaps; a single-write-lock engine
// holds its lock through them.
const txnThinkTime = time.Millisecond

// txnPhaseResult is one mode's measurement of the transactional sweep.
type txnPhaseResult struct {
	tput      float64
	writeP50  float64
	writeP99  float64
	readP50   float64
	readP99   float64
	abortPct  float64
	commits   int64
	conflicts int64
}

// concurrentTxnPhase is the transactional variant of the concurrent-
// clients experiment: at a fixed 16 sessions, half the clients run
// two-statement transfer transactions (BEGIN; UPDATE a; UPDATE b;
// COMMIT, retrying on write-write conflict) while the other half run
// grouped aggregates over the same table. The identical statement mix
// is measured twice — once on the MVCC snapshot-isolation path and once
// with the engine forced onto the single-write-lock path
// (SetSerialWrites: each transaction holds the global write gate from
// BEGIN to COMMIT, the lock-based way to make the transfer atomic) —
// and the mixed-throughput ratio between the two is the headline
// number.
func concurrentTxnPhase(cfg Config, res *Result) error {
	const clients = 16
	accounts := cfg.scaled(20_000)
	transfersPerWriter := cfg.scaled(300)
	aggsPerReader := cfg.scaled(200)
	writers := clients / 2
	readers := clients - writers

	modes := []struct {
		name   string
		serial bool
	}{
		{"serial-lock", true},
		{"mvcc-txn", false},
	}
	var tputs []float64
	for _, mode := range modes {
		pr, err := runTxnMode(mode.serial, accounts, writers, readers,
			transfersPerWriter, aggsPerReader, cfg.Seed)
		if err != nil {
			return fmt.Errorf("txn phase (%s): %w", mode.name, err)
		}
		tputs = append(tputs, pr.tput)
		res.AddRow([]string{
			fmt.Sprintf("%d %s", clients, mode.name), fmt.Sprintf("%d", writers), fmt.Sprintf("%d", readers),
			fmt.Sprintf("%.2fms", pr.writeP50),
			fmt.Sprintf("%.2fms", pr.writeP99),
			fmt.Sprintf("%.2fms", pr.readP50),
			fmt.Sprintf("%.2fms", pr.readP99),
			fmt.Sprintf("%.0f", pr.tput),
		}, map[string]float64{
			"txn ops/s @16":  pr.tput,
			"txn write p99":  pr.writeP99,
			"txn read p99":   pr.readP99,
			"txn abort rate": pr.abortPct,
		})
		res.Notes = append(res.Notes, fmt.Sprintf(
			"txn mode %s: %d commits, %d write-write conflicts (abort rate %.2f%%)",
			mode.name, pr.commits, pr.conflicts, pr.abortPct))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"txn transfers carry %s of modeled client-side work between legs; the serial baseline holds its lock across it",
		txnThinkTime))
	speedup := tputs[1] / tputs[0]
	res.Series["txn speedup @16"] = []float64{speedup}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"transactional mixed throughput @16 clients: MVCC %.0f ops/s vs single-write-lock %.0f ops/s = %.2fx (acceptance: >= 1.5x)",
		tputs[1], tputs[0], speedup))
	return nil
}

// runTxnMode runs one mode of the transactional sweep against a fresh
// in-process server.
func runTxnMode(serial bool, accounts, writers, readers, transfersPerWriter, aggsPerReader int, seed int64) (*txnPhaseResult, error) {
	db := engine.New()
	if err := db.CreateTable(txnSchema(), catalog.RowStore); err != nil {
		return nil, err
	}
	batch := make([][]value.Value, 0, 8192)
	for i := 0; i < accounts; i++ {
		batch = append(batch, []value.Value{
			value.NewBigint(int64(i)), value.NewInt(int64(i % 13)), value.NewDouble(100),
		})
		if len(batch) == cap(batch) || i == accounts-1 {
			if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "acct", Rows: batch}); err != nil {
				return nil, err
			}
			batch = batch[:0]
		}
	}
	db.SetSerialWrites(serial)
	// Workers must exceed the client count: in serial-lock mode a reader
	// blocks on the write-transaction gate while holding its pool slot,
	// and the gate holder's own statements still need a slot to finish.
	srv, err := server.Serve(db, "127.0.0.1:0", server.Config{MaxSessions: 64, Workers: 2 * (writers + readers)})
	if err != nil {
		return nil, err
	}
	addr := srv.Addr().String()
	ctx := context.Background()

	writeHist := metrics.NewHistogram()
	readHist := metrics.NewHistogram()
	var commits, conflicts int64
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{Name: fmt.Sprintf("txn-w%d", w)})
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < transfersPerWriter; i++ {
				a := rng.Int63n(int64(accounts))
				b := rng.Int63n(int64(accounts))
				if a == b {
					b = (b + 1) % int64(accounts)
				}
				delta := float64(1 + rng.Intn(10))
				t0 := time.Now()
				for {
					tx, err := c.Begin(ctx)
					if err != nil {
						fail(fmt.Errorf("writer %d begin: %w", w, err))
						return
					}
					_, err = tx.Exec(ctx, "UPDATE acct SET bal = ? WHERE id = ?",
						value.NewDouble(100-delta), value.NewBigint(a))
					if err == nil {
						// Modeled application work between the two legs of
						// the transfer (computing the second leg, audit
						// logging, a service hop): interactive transactions
						// stay open across client-side gaps, which is
						// precisely what the single-write-lock baseline
						// serializes and MVCC overlaps. Identical in both
						// modes.
						time.Sleep(txnThinkTime)
						_, err = tx.Exec(ctx, "UPDATE acct SET bal = ? WHERE id = ?",
							value.NewDouble(100+delta), value.NewBigint(b))
					}
					if err == nil {
						err = tx.Commit(ctx)
					}
					if err == nil {
						atomic.AddInt64(&commits, 1)
						break
					}
					tx.Rollback(ctx)
					if client.IsRetryable(err) {
						atomic.AddInt64(&conflicts, 1)
						continue
					}
					fail(fmt.Errorf("writer %d: %w", w, err))
					return
				}
				writeHist.Observe(time.Since(t0).Nanoseconds())
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{Name: fmt.Sprintf("txn-r%d", r)})
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			agg, err := c.Prepare(ctx, "SELECT grp, COUNT(*), SUM(bal), MAX(bal) FROM acct GROUP BY grp ORDER BY grp")
			if err != nil {
				fail(err)
				return
			}
			for i := 0; i < aggsPerReader; i++ {
				t0 := time.Now()
				if _, err := agg.Exec(ctx); err != nil {
					fail(fmt.Errorf("reader %d: %w", r, err))
					return
				}
				readHist.Observe(time.Since(t0).Nanoseconds())
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Mixed throughput counts acknowledged statements: two updates per
	// transfer plus one per aggregate — identical work in both modes.
	ops := 2*atomic.LoadInt64(&commits) + readHist.Count()
	pr := &txnPhaseResult{
		tput:      float64(ops) / elapsed.Seconds(),
		writeP50:  histMS(writeHist, 0.50),
		writeP99:  histMS(writeHist, 0.99),
		readP50:   histMS(readHist, 0.50),
		readP99:   histMS(readHist, 0.99),
		commits:   atomic.LoadInt64(&commits),
		conflicts: atomic.LoadInt64(&conflicts),
	}
	if total := pr.commits + pr.conflicts; total > 0 {
		pr.abortPct = 100 * float64(pr.conflicts) / float64(total)
	}
	return pr, nil
}
