package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hybridstore/internal/catalog"
	"hybridstore/internal/client"
	"hybridstore/internal/engine"
	"hybridstore/internal/expr"
	"hybridstore/internal/metrics"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/server"
	"hybridstore/internal/value"
)

func concurrentSchema() *schema.Table {
	return schema.MustNew("nett", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "grp", Type: value.Integer},
		{Name: "amount", Type: value.Double},
		{Name: "note", Type: value.Varchar},
	}, "id")
}

// ackedWrite is one acknowledged DML statement of one writer, replayed
// into the single-session oracle for the differential check.
type ackedWrite struct {
	insert bool
	id     int64
	grp    int64
	amount float64
	note   string
}

// histMS returns a histogram quantile (recorded in ns) in milliseconds.
func histMS(h *metrics.Histogram, q float64) float64 { return h.Quantile(q) / 1e6 }

// ConcurrentClients is the network-service experiment: an in-process
// hsqld serves one engine over TCP; N writer sessions sustain single-row
// DML (prepared INSERTs with a 1-in-4 UPDATE mix) while M analytical
// reader sessions run grouped aggregates, per client count. Reported
// per sweep point: p50/p99 statement latency per class and aggregate
// throughput. After the sweep the table is differential-checked against
// a single-session oracle that replays exactly the acknowledged writes
// (zero lost, zero duplicated), and a cancellation probe verifies an
// in-flight analytical scan aborts at a batch boundary.
func ConcurrentClients(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	opsPerWriter := cfg.scaled(600)
	opsPerReader := cfg.scaled(150)

	db := engine.New()
	if err := db.CreateTable(concurrentSchema(), catalog.RowStore); err != nil {
		return nil, err
	}
	srv, err := server.Serve(db, "127.0.0.1:0", server.Config{MaxSessions: 64})
	if err != nil {
		return nil, err
	}
	addr := srv.Addr().String()
	ctx := context.Background()

	res := &Result{
		Columns: []string{"clients", "writers", "readers", "write p50", "write p99", "read p50", "read p99", "ops/s"},
		Notes: []string{
			fmt.Sprintf("%d DML ops per writer (1 update per 4 inserts), %d aggregates per reader, over TCP", opsPerWriter, opsPerReader),
			"acceptance: >= 8 concurrent sessions with zero lost or duplicated writes (differential oracle check below)",
		},
	}

	var oracleOps [][]ackedWrite
	nextBase := int64(0)

	for _, clients := range []int{2, 4, 8, 16} {
		writers := clients / 2
		readers := clients - writers
		// Per-sweep-point latency distributions: the same bounded
		// histogram the metrics registry uses, recorded lock-free from
		// every client goroutine (observations are atomic adds).
		writeHist := metrics.NewHistogram()
		readHist := metrics.NewHistogram()
		var (
			mu       sync.Mutex
			firstErr error
		)
		fail := func(err error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			base := nextBase
			nextBase += int64(opsPerWriter) + 1
			wg.Add(1)
			go func(w int, base int64) {
				defer wg.Done()
				c, err := client.Dial(addr, client.Options{Name: fmt.Sprintf("w%d", w)})
				if err != nil {
					fail(err)
					return
				}
				defer c.Close()
				ins, err := c.Prepare(ctx, "INSERT INTO nett VALUES (?, ?, ?, ?)")
				if err != nil {
					fail(err)
					return
				}
				upd, err := c.Prepare(ctx, "UPDATE nett SET amount = ? WHERE id = ?")
				if err != nil {
					fail(err)
					return
				}
				var acked []ackedWrite
				inserted := int64(0)
				for i := 0; i < opsPerWriter; i++ {
					t0 := time.Now()
					if i%5 == 4 && inserted > 0 {
						target := base + (int64(i) % inserted)
						na := float64(i) * 1.25
						if _, err := upd.Exec(ctx, value.NewDouble(na), value.NewBigint(target)); err != nil {
							fail(fmt.Errorf("writer %d update: %w", w, err))
							return
						}
						acked = append(acked, ackedWrite{id: target, amount: na})
					} else {
						id := base + inserted
						grp := int64(id % 13)
						amount := float64(i)
						note := fmt.Sprintf("w%d-%d", w, i)
						if _, err := ins.Exec(ctx, value.NewBigint(id), value.NewBigint(grp),
							value.NewDouble(amount), value.NewVarchar(note)); err != nil {
							fail(fmt.Errorf("writer %d insert: %w", w, err))
							return
						}
						acked = append(acked, ackedWrite{insert: true, id: id, grp: grp, amount: amount, note: note})
						inserted++
					}
					writeHist.Observe(time.Since(t0).Nanoseconds())
				}
				mu.Lock()
				oracleOps = append(oracleOps, acked)
				mu.Unlock()
			}(w, base)
		}
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c, err := client.Dial(addr, client.Options{Name: fmt.Sprintf("r%d", r)})
				if err != nil {
					fail(err)
					return
				}
				defer c.Close()
				agg, err := c.Prepare(ctx, "SELECT grp, COUNT(*), SUM(amount), MAX(amount) FROM nett WHERE grp >= ? GROUP BY grp ORDER BY grp")
				if err != nil {
					fail(err)
					return
				}
				for i := 0; i < opsPerReader; i++ {
					t0 := time.Now()
					if _, err := agg.Exec(ctx, value.NewBigint(int64(i%4))); err != nil {
						fail(fmt.Errorf("reader %d: %w", r, err))
						return
					}
					readHist.Observe(time.Since(t0).Nanoseconds())
				}
			}(r)
		}
		wg.Wait()
		if firstErr != nil {
			srv.Shutdown(ctx)
			return nil, firstErr
		}
		elapsed := time.Since(start)
		totalOps := writeHist.Count() + readHist.Count()
		tput := float64(totalOps) / elapsed.Seconds()
		res.AddRow([]string{
			fmt.Sprintf("%d", clients), fmt.Sprintf("%d", writers), fmt.Sprintf("%d", readers),
			fmt.Sprintf("%.2fms", histMS(writeHist, 0.50)),
			fmt.Sprintf("%.2fms", histMS(writeHist, 0.99)),
			fmt.Sprintf("%.2fms", histMS(readHist, 0.50)),
			fmt.Sprintf("%.2fms", histMS(readHist, 0.99)),
			fmt.Sprintf("%.0f", tput),
		}, map[string]float64{
			"clients": float64(clients), "ops/s": tput,
			"write p50": histMS(writeHist, 0.50),
			"write p99": histMS(writeHist, 0.99),
			"read p50":  histMS(readHist, 0.50),
			"read p99":  histMS(readHist, 0.99),
		})
	}

	// Differential check: replay every acknowledged write into a fresh
	// single-session oracle and compare full ordered contents.
	lost, err := concurrentDifferential(db, oracleOps)
	if err != nil {
		srv.Shutdown(ctx)
		return nil, err
	}
	res.Notes = append(res.Notes, fmt.Sprintf("differential check vs single-session oracle: %s", lost))

	// Cancellation probe: abort an in-flight analytical scan. The
	// scan-started hook makes the interleaving deterministic, so the
	// table only needs to be big enough for a meaningful full-scan
	// reference time, not big enough to outrun a sleep.
	note, err := cancelProbe(db, addr, cfg.scaled(600_000))
	if err != nil {
		srv.Shutdown(ctx)
		return nil, err
	}
	res.Notes = append(res.Notes, note)

	// Transactional variant: the same mixed workload driven through
	// explicit transactions on the MVCC path vs the single-write-lock
	// baseline, at the top of the sweep (16 clients).
	if err := concurrentTxnPhase(cfg, res); err != nil {
		srv.Shutdown(ctx)
		return nil, err
	}

	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return nil, err
	}
	return res, nil
}

// concurrentDifferential replays acked writes into an oracle and diffs.
func concurrentDifferential(db *engine.Database, oracleOps [][]ackedWrite) (string, error) {
	oracle := engine.New()
	if err := oracle.CreateTable(concurrentSchema(), catalog.RowStore); err != nil {
		return "", err
	}
	replayed := 0
	for _, ops := range oracleOps {
		for _, op := range ops {
			var err error
			if op.insert {
				_, err = oracle.Exec(&query.Query{Kind: query.Insert, Table: "nett", Rows: [][]value.Value{{
					value.NewBigint(op.id), value.NewInt(op.grp), value.NewDouble(op.amount), value.NewVarchar(op.note),
				}}})
			} else {
				_, err = oracle.Exec(&query.Query{Kind: query.Update, Table: "nett",
					Set:  map[int]value.Value{2: value.NewDouble(op.amount)},
					Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(op.id)},
				})
			}
			if err != nil {
				return "", fmt.Errorf("oracle replay: %w", err)
			}
			replayed++
		}
	}
	dump := func(d *engine.Database) (*engine.Result, error) {
		return d.Exec(&query.Query{Kind: query.Select, Table: "nett", OrderBy: []query.Order{{Col: 0}}})
	}
	got, err := dump(db)
	if err != nil {
		return "", err
	}
	want, err := dump(oracle)
	if err != nil {
		return "", err
	}
	if len(got.Rows) != len(want.Rows) {
		return "", fmt.Errorf("differential check FAILED: server has %d rows, oracle %d (lost or duplicated writes)",
			len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if !value.Equal(got.Rows[i][j], want.Rows[i][j]) {
				return "", fmt.Errorf("differential check FAILED: row %d col %d: server %v, oracle %v",
					i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	return fmt.Sprintf("PASS (%d acked writes replayed, %d rows identical)", replayed, len(got.Rows)), nil
}

// cancelProbe measures how fast a cancelled context aborts an in-flight
// analytical scan over the wire. The probe table is bulk-loaded
// engine-side so the scan takes long enough for the cancel to land
// mid-flight even on slow schedulers.
func cancelProbe(db *engine.Database, addr string, rows int) (string, error) {
	sch := schema.MustNew("nettbig", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "grp", Type: value.Integer},
		{Name: "amount", Type: value.Double},
	}, "id")
	if err := db.CreateTable(sch, catalog.RowStore); err != nil {
		return "", err
	}
	batch := make([][]value.Value, 0, 8192)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		_, err := db.Exec(&query.Query{Kind: query.Insert, Table: "nettbig", Rows: batch})
		batch = batch[:0]
		return err
	}
	for i := 0; i < rows; i++ {
		batch = append(batch, []value.Value{
			value.NewBigint(int64(i)), value.NewInt(int64(i % 29)), value.NewDouble(float64(i)),
		})
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return "", err
			}
		}
	}
	if err := flush(); err != nil {
		return "", err
	}

	c, err := client.Dial(addr, client.Options{Name: "cancel-probe"})
	if err != nil {
		return "", err
	}
	defer c.Close()
	ctx := context.Background()
	const aggSQL = "SELECT grp, COUNT(*), SUM(amount), MIN(amount), MAX(amount) FROM nettbig WHERE amount >= 0 GROUP BY grp"
	t0 := time.Now()
	if _, err := c.Query(ctx, aggSQL); err != nil {
		return "", err
	}
	full := time.Since(t0)

	// Deterministic in-flight cancel: the scan-started hook parks the
	// probe scan at its start until the out-of-band cancel frame has
	// cancelled the statement context server-side, instead of racing a
	// sleep sized off the full-scan time against scan speed.
	started := make(chan struct{})
	engine.SetScanStartedHook(func(hctx context.Context, table string) {
		if table != "nettbig" {
			return
		}
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-hctx.Done():
		case <-time.After(10 * time.Second): // safety: never wedge the bench
		}
	})
	defer engine.SetScanStartedHook(nil)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
		}
		cancel()
	}()
	t0 = time.Now()
	_, err = c.Query(cctx, aggSQL)
	aborted := time.Since(t0)
	if err == nil {
		return "", fmt.Errorf("cancellation probe: scan finished despite the scan-started gate")
	}
	if !client.IsCancelled(err) {
		return "", fmt.Errorf("cancellation probe: unexpected error %w", err)
	}
	return fmt.Sprintf("cancellation probe: in-flight scan aborted after %v (full scan %v)", aborted, full), nil
}
