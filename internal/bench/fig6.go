package bench

import (
	"fmt"

	"hybridstore/internal/advisor"
	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/engine"
	"hybridstore/internal/query"
	"hybridstore/internal/workload"
)

// fig6Setup loads the paper's 30-attribute experiment table into a fresh
// engine with the given store and returns the engine plus an InfoSource
// backed by freshly collected statistics.
func fig6Setup(cfg Config, store catalog.StoreKind, rows int) (*engine.Database, costmodel.InfoSource, error) {
	db := engine.New()
	spec := workload.StandardTable("exp")
	if err := spec.Load(db, store, rows, cfg.Seed); err != nil {
		return nil, nil, err
	}
	if _, err := db.CollectStats("exp"); err != nil {
		return nil, nil, err
	}
	return db, advisor.InfoFromCatalog(db.Catalog()), nil
}

// Fig6a reproduces Figure 6(a): a constant aggregation query (SUM over
// one keyfigure) against the experiment table at growing data volumes;
// the paper's 2m–20m tuples are scaled to 50k–500k. For each size and
// store it reports the cost-model estimate next to the measured runtime.
func Fig6a(cfg Config) (*Result, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	spec := workload.StandardTable("exp")
	q := &query.Query{
		Kind: query.Aggregate, Table: "exp",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: spec.Keyfigures[0]}},
	}
	res := &Result{Columns: []string{"rows", "rs_est_ms", "rs_act_ms", "cs_est_ms", "cs_act_ms"}}
	sizes := []int{50_000, 125_000, 250_000, 375_000, 500_000}
	for _, base := range sizes {
		n := cfg.scaled(base)
		row := []string{fmt.Sprintf("%d", n)}
		numeric := map[string]float64{"rows": float64(n)}
		for _, store := range []catalog.StoreKind{catalog.RowStore, catalog.ColumnStore} {
			db, info, err := fig6Setup(cfg, store, n)
			if err != nil {
				return nil, err
			}
			place := costmodel.Placement{"exp": store}
			est := m.EstimateQuery(q, info, place)
			act, err := measureQuery(db, q, cfg.Reps)
			if err != nil {
				return nil, err
			}
			prefix := "rs"
			if store == catalog.ColumnStore {
				prefix = "cs"
			}
			row = append(row, ms(est), ms(float64(act)))
			numeric[prefix+"_est"] = est
			numeric[prefix+"_act"] = float64(act)
		}
		res.AddRow(row, numeric)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("row store estimation error (mean abs): %.1f%%",
			100*costmodel.MeanAbsError(res.Series["rs_est"], res.Series["rs_act"])),
		fmt.Sprintf("column store estimation error (mean abs): %.1f%%",
			100*costmodel.MeanAbsError(res.Series["cs_est"], res.Series["cs_act"])),
		"expected shape: both stores linear in rows; estimates track actuals (paper Fig. 6a)",
	)
	return res, nil
}

// Fig6b reproduces Figure 6(b): the same table at a fixed size (paper:
// 10m tuples, ours: 250k) with the number of aggregates in the query
// varied from 1 to 5.
func Fig6b(cfg Config) (*Result, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	spec := workload.StandardTable("exp")
	n := cfg.scaled(250_000)
	res := &Result{Columns: []string{"aggregates", "rs_est_ms", "rs_act_ms", "cs_est_ms", "cs_act_ms"}}

	type ctx struct {
		db   *engine.Database
		info costmodel.InfoSource
	}
	stores := map[catalog.StoreKind]*ctx{}
	for _, store := range []catalog.StoreKind{catalog.RowStore, catalog.ColumnStore} {
		db, info, err := fig6Setup(cfg, store, n)
		if err != nil {
			return nil, err
		}
		stores[store] = &ctx{db: db, info: info}
	}
	funcs := []agg.Func{agg.Sum, agg.Avg, agg.Min, agg.Max, agg.Sum}
	for k := 1; k <= 5; k++ {
		aggs := make([]agg.Spec, k)
		for i := 0; i < k; i++ {
			aggs[i] = agg.Spec{Func: funcs[i], Col: spec.Keyfigures[i]}
		}
		q := &query.Query{Kind: query.Aggregate, Table: "exp", Aggs: aggs}
		row := []string{fmt.Sprintf("%d", k)}
		numeric := map[string]float64{"aggregates": float64(k)}
		for _, store := range []catalog.StoreKind{catalog.RowStore, catalog.ColumnStore} {
			c := stores[store]
			est := m.EstimateQuery(q, c.info, costmodel.Placement{"exp": store})
			act, err := measureQuery(c.db, q, cfg.Reps)
			if err != nil {
				return nil, err
			}
			prefix := "rs"
			if store == catalog.ColumnStore {
				prefix = "cs"
			}
			row = append(row, ms(est), ms(float64(act)))
			numeric[prefix+"_est"] = est
			numeric[prefix+"_act"] = float64(act)
		}
		res.AddRow(row, numeric)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("row store estimation error (mean abs): %.1f%%",
			100*costmodel.MeanAbsError(res.Series["rs_est"], res.Series["rs_act"])),
		fmt.Sprintf("column store estimation error (mean abs): %.1f%%",
			100*costmodel.MeanAbsError(res.Series["cs_est"], res.Series["cs_act"])),
		"expected shape: linear growth with the number of aggregates (paper Fig. 6b)",
	)
	return res, nil
}
