package bench

import (
	"fmt"

	"hybridstore/internal/advisor"
	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/value"
	"hybridstore/internal/workload"
)

// Fig8 reproduces Figure 8: a fixed mixed workload (500 queries, 5% OLAP,
// update queries addressing the most recent 10% of the data) is run
// against horizontal partitionings that put different fractions of the
// data into the row-store partition — ignoring the advisor's
// recommendation to show that the recommended 10% is the minimum. The
// paper's 10m-tuple table is scaled to 150k.
func Fig8(cfg Config) (*Result, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	adv := advisor.New(m)
	n := cfg.scaled(150_000)
	spec := workload.StandardTable("exp")
	w := workload.GenMixed(spec, workload.MixConfig{
		Queries: 500, OLAPFraction: 0.05, TableRows: n,
		HotDataFraction: 0.10, UpdateRowsPerQuery: 100,
		InsertWeight: 0.2, UpdateWeight: 2, PointSelectWeight: 0.3,
		Seed: cfg.Seed,
	})

	// What does the advisor itself recommend?
	statsDB := engine.New()
	if err := spec.Load(statsDB, catalog.ColumnStore, n, cfg.Seed); err != nil {
		return nil, err
	}
	if _, err := statsDB.CollectStats("exp"); err != nil {
		return nil, err
	}
	info := advisor.InfoFromCatalog(statsDB.Catalog())
	rec := adv.Recommend(w, info, nil, nil)
	recFraction := -1.0
	if s := rec.Layout.SpecFor("exp"); s != nil && s.Horizontal != nil {
		recFraction = 1 - s.Horizontal.SplitVal.Float()/float64(n)
	}

	res := &Result{Columns: []string{"rs_fraction", "runtime_s"}}
	for _, frac := range []float64{0, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15, 0.20} {
		db := engine.New()
		var spec2 *catalog.PartitionSpec
		if frac > 0 {
			splitAt := int64(float64(n) * (1 - frac))
			spec2 = &catalog.PartitionSpec{Horizontal: &catalog.HorizontalSpec{
				SplitCol: 0, SplitVal: value.NewBigint(splitAt),
				HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
			}}
		}
		ts := workload.StandardTable("exp")
		if err := ts.LoadLayout(db, catalog.ColumnStore, spec2, n, cfg.Seed); err != nil {
			return nil, err
		}
		t, err := runWorkload(db, w)
		if err != nil {
			return nil, err
		}
		res.AddRow(
			[]string{fmt.Sprintf("%.1f%%", frac*100), secs(t)},
			map[string]float64{"rs_fraction": frac, "runtime": float64(t)},
		)
	}
	if recFraction >= 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("advisor recommended a row-store partition of %.1f%% of the data", recFraction*100))
	} else {
		res.Notes = append(res.Notes, "advisor did not recommend a horizontal partition")
	}
	res.Notes = append(res.Notes,
		"expected shape: minimum near the 10% of data the updates address (paper Fig. 8)")
	return res, nil
}
