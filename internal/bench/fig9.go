package bench

import (
	"fmt"
	"time"

	"hybridstore/internal/advisor"
	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/workload"
)

// olapFractions9 is the sweep of Figure 9: 0%..2.5%.
var olapFractions9 = []float64{0, 0.00625, 0.0125, 0.01875, 0.025}

// Fig9a reproduces Figure 9(a), the OLAP setting of the vertical
// partitioning experiment: a table with 10 keyfigures, 8 group-by
// attributes and 2 selection/update attributes, run unpartitioned in each
// store and vertically partitioned as the advisor recommends.
func Fig9a(cfg Config) (*Result, error) {
	return fig9(cfg, workload.VerticalOLAPTable("vexp"),
		"expected shape: partitioned table tracks the column store with a constant gain; row store explodes with OLAP fraction (paper Fig. 9a)")
}

// Fig9b reproduces Figure 9(b), the OLTP setting: 18 selection/update
// attributes, 1 keyfigure, 1 group-by attribute.
func Fig9b(cfg Config) (*Result, error) {
	return fig9(cfg, workload.VerticalOLTPTable("vexp"),
		"expected shape: like 9(a) but with smaller gains; at 0% OLAP the unpartitioned row store is optimal (paper Fig. 9b)")
}

func fig9(cfg Config, spec *workload.TableSpec, expect string) (*Result, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	adv := advisor.New(m)
	n := cfg.scaled(150_000)

	// Derive the vertical split the advisor recommends from a
	// representative workload.
	statsDB := engine.New()
	if err := spec.Load(statsDB, catalog.ColumnStore, n, cfg.Seed); err != nil {
		return nil, err
	}
	if _, err := statsDB.CollectStats(spec.Schema.Name); err != nil {
		return nil, err
	}
	info := advisor.InfoFromCatalog(statsDB.Catalog())
	// The probe workload needs enough aggregation queries to cover every
	// keyfigure; otherwise never-seen attributes land in the row partition
	// and later aggregates would span the split.
	probe := workload.GenMixed(spec, workload.MixConfig{
		Queries: 500, OLAPFraction: 0.2, TableRows: n,
		OLTPAttrsOnly: true, UpdateRowsPerQuery: 100,
		MaxAggs: 3, NoFilterPreds: true, Seed: cfg.Seed,
	})
	var vertical *catalog.PartitionSpec
	for _, c := range adv.PartitionCandidates(probe, info, nil, nil) {
		if c.Spec.Vertical != nil && c.Spec.Horizontal == nil {
			vertical = c.Spec
			break
		}
	}
	if vertical == nil {
		// Fall back to the role-based split the paper describes: OLAP
		// attributes (keyfigures, group-bys) columnar, the rest row.
		rowCols := append([]int{0}, spec.OLTPAttrs...)
		colCols := append([]int{0}, spec.Keyfigures...)
		colCols = append(colCols, spec.GroupBys...)
		vertical = &catalog.PartitionSpec{Vertical: &catalog.VerticalSpec{RowCols: rowCols, ColCols: colCols}}
	}

	res := &Result{Columns: []string{"olap_frac", "rs_only_s", "cs_only_s", "vertical_s"}}
	for _, frac := range olapFractions9 {
		w := workload.GenMixed(spec, workload.MixConfig{
			Queries: 500, OLAPFraction: frac, TableRows: n,
			OLTPAttrsOnly: true, UpdateRowsPerQuery: 100,
			NoFilterPreds: true,
			Seed:          cfg.Seed + int64(frac*100000),
		})
		var times [3]time.Duration
		variants := []struct {
			store catalog.StoreKind
			spec  *catalog.PartitionSpec
		}{
			{catalog.RowStore, nil},
			{catalog.ColumnStore, nil},
			{catalog.Partitioned, vertical},
		}
		for i, v := range variants {
			db := engine.New()
			ts := *spec // Load mutates nothing, reuse schema safely
			if err := ts.LoadLayout(db, v.store, v.spec, n, cfg.Seed); err != nil {
				return nil, err
			}
			t, err := runWorkload(db, w)
			if err != nil {
				return nil, err
			}
			times[i] = t
		}
		res.AddRow([]string{
			fmt.Sprintf("%.3f%%", frac*100),
			secs(times[0]), secs(times[1]), secs(times[2]),
		}, map[string]float64{
			"olap_frac": frac,
			"rs_only":   float64(times[0]),
			"cs_only":   float64(times[1]),
			"vertical":  float64(times[2]),
		})
	}
	res.Notes = append(res.Notes, expect)
	return res, nil
}
