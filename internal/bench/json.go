package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// Snapshot is the machine-readable form of a finished experiment,
// written as BENCH_<name>.json so runs on different machines (and CI)
// can be compared. Meta records the hardware context the numbers were
// taken in — parallel speedups are meaningless without the core count.
type Snapshot struct {
	Name    string               `json:"name"`
	Title   string               `json:"title"`
	Columns []string             `json:"columns"`
	Rows    [][]string           `json:"rows"`
	Series  map[string][]float64 `json:"series,omitempty"`
	Notes   []string             `json:"notes,omitempty"`
	Meta    SnapshotMeta         `json:"meta"`
}

// SnapshotMeta is the run context of a Snapshot.
type SnapshotMeta struct {
	Taken      string  `json:"taken"` // RFC 3339, UTC
	GoVersion  string  `json:"go_version"`
	OS         string  `json:"os"`
	Arch       string  `json:"arch"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Scale      float64 `json:"scale"`
	Seed       int64   `json:"seed"`
	Reps       int     `json:"reps"`
}

// WriteJSON serializes res as dir/BENCH_<name>.json and returns the
// written path.
func WriteJSON(dir string, res *Result, cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	snap := Snapshot{
		Name:    res.Name,
		Title:   res.Title,
		Columns: res.Columns,
		Rows:    res.Rows,
		Series:  res.Series,
		Notes:   res.Notes,
		Meta: SnapshotMeta{
			Taken:      time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Scale:      cfg.Scale,
			Seed:       cfg.Seed,
			Reps:       cfg.Reps,
		},
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", res.Name))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
