package bench

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"hybridstore/internal/costmodel"
)

// quickCfg runs experiments at a small scale with the deterministic
// default model so unit tests stay fast and machine-independent where
// possible.
func quickCfg() Config {
	return Config{
		Scale: 0.05, Seed: 7, Reps: 3,
		Model: costmodel.DefaultModel(),
		Out:   &bytes.Buffer{},
	}
}

func TestResultPrinting(t *testing.T) {
	r := &Result{
		Name:    "demo",
		Title:   "Demo",
		Columns: []string{"a", "b"},
	}
	r.AddRow([]string{"1", "2"}, map[string]float64{"a": 1})
	r.Notes = append(r.Notes, "a note")
	var buf bytes.Buffer
	r.Fprint(&buf)
	out := buf.String()
	for _, frag := range []string{"demo", "a note", "1", "-"} {
		if !strings.Contains(out, frag) {
			t.Errorf("printout missing %q:\n%s", frag, out)
		}
	}
	if r.Series["a"][0] != 1 {
		t.Error("series not recorded")
	}
}

func TestLookupAndUnknown(t *testing.T) {
	if _, ok := Lookup("fig6a"); !ok {
		t.Error("fig6a missing")
	}
	if _, ok := Lookup("FIG10"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"fig6a", "fig6b", "fig7a", "fig7b", "fig8", "fig9a", "fig9b", "fig10", "ablation", "durability", "concurrent-clients", "parallel", "planner", "ingest"}
	have := Experiments()
	if len(have) != len(want) {
		t.Fatalf("experiments = %d, want %d", len(have), len(want))
	}
	for i, n := range want {
		if have[i].Name != n {
			t.Errorf("experiment %d = %s, want %s", i, have[i].Name, n)
		}
	}
}

func TestFig6aQuick(t *testing.T) {
	res, err := Run("fig6a", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Actual runtimes must grow with data volume for both stores, and the
	// column store must aggregate faster than the row store at the top
	// size (the asymmetry the advisor exploits).
	rs, cs := res.Series["rs_act"], res.Series["cs_act"]
	if rs[len(rs)-1] <= rs[0] {
		t.Errorf("row store runtime not growing: %v", rs)
	}
	if cs[len(cs)-1] <= cs[0] {
		t.Errorf("column store runtime not growing: %v", cs)
	}
	if cs[len(cs)-1] >= rs[len(rs)-1] {
		t.Errorf("column store should aggregate faster: cs=%v rs=%v", cs, rs)
	}
}

func TestFig6bQuick(t *testing.T) {
	res, err := Run("fig6b", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	rs := res.Series["rs_act"]
	if rs[4] <= rs[0] {
		t.Errorf("runtime should grow with aggregates: %v", rs)
	}
}

func TestFig7aQuick(t *testing.T) {
	res, err := Run("fig7a", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The advisor's line must track within the two baselines (it picks
	// one of them).
	for i := range res.Series["advisor"] {
		adv := res.Series["advisor"][i]
		rs, cs := res.Series["rs_only"][i], res.Series["cs_only"][i]
		if adv != rs && adv != cs {
			t.Errorf("point %d: advisor runtime matches neither store", i)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	res, err := Run("fig8", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestFig9aQuick(t *testing.T) {
	res, err := Run("fig9a", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestFig10Quick(t *testing.T) {
	res, err := Run("fig10", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, key := range []string{"rs_only", "cs_only", "table", "partitioned"} {
		if len(res.Series[key]) != 1 {
			t.Errorf("missing series %q", key)
		}
	}
}

func TestAblationsQuick(t *testing.T) {
	res, err := Run("ablation", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Series["codeagg_speedup"][0] <= 0 {
		t.Error("per-code aggregation speedup missing")
	}
	if res.Series["delta_speedup"][0] <= 1 {
		t.Errorf("delta should speed up loads: %v", res.Series["delta_speedup"])
	}
}

func TestConcurrentClientsQuick(t *testing.T) {
	res, err := Run("concurrent-clients", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The sweep must include a point with >= 8 concurrent sessions.
	max := 0.0
	for _, c := range res.Series["clients"] {
		if c > max {
			max = c
		}
	}
	if max < 8 {
		t.Fatalf("sweep peaked at %.0f sessions, acceptance needs >= 8", max)
	}
	// The differential oracle check must have passed.
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "differential check") {
			found = true
			if !strings.Contains(n, "PASS") {
				t.Fatalf("differential check note: %s", n)
			}
		}
	}
	if !found {
		t.Fatal("no differential check note")
	}
}

// TestParallelExperimentSmoke is the CI bench smoke for the morsel
// executor: the experiment itself fails if parallel results diverge
// from serial ones, and on hosts with at least 4 cores the scan and
// group-by speedups must not fall below serial beyond a 10% tolerance.
// Single- and dual-core hosts only get the correctness check — a
// speedup floor there would assert noise.
func TestParallelExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel experiment smoke skipped in -short")
	}
	cfg := quickCfg()
	cfg.Scale = 0.25
	cfg.Reps = 5
	res, err := Parallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if procs := runtime.GOMAXPROCS(0); procs < 4 {
		t.Logf("GOMAXPROCS=%d: correctness verified, speedup floor skipped", procs)
		return
	}
	for _, q := range []string{"scan", "group-by", "filter-agg", "join"} {
		sp := res.Series[q+"_speedup"]
		if len(sp) != 1 {
			t.Fatalf("missing %s speedup series", q)
		}
		if sp[0] < 0.9 {
			t.Errorf("%s: parallel slower than serial beyond tolerance (speedup %.2fx)", q, sp[0])
		}
	}
}

// TestIngestExperimentSmoke is the CI bench smoke for the bulk-ingest
// path: the experiment hard-fails on any lost/duplicated row or an
// unbounded soak delta, and the COPY-vs-INSERT ratio must clear the
// acceptance floor with margin to spare even on slow CI disks.
func TestIngestExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ingest experiment smoke skipped in -short")
	}
	cfg := quickCfg()
	res, err := Ingest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Series["copy vs insert"]
	if len(ratio) != 1 {
		t.Fatal("missing copy vs insert series")
	}
	if ratio[0] < 5 {
		t.Errorf("durable COPY only %.1fx single-statement INSERT, acceptance floor is 5x", ratio[0])
	}
	if len(res.Series["soak rows/s"]) != 1 || len(res.Series["soak peak delta rows"]) != 1 {
		t.Error("missing soak series")
	}
}
