package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"hybridstore/internal/advisor"
	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/tpch"
)

// Fig10 reproduces the final experiment (Figure 10): TPC-H data (paper:
// SF 1, ours: SF 0.02 by default) with a 5000-query mixed workload at
// about 1% OLAP, executed under four strategies — all tables in the row
// store, all in the column store, the advisor's table-level
// recommendation, and the advisor's partitioned layout.
func Fig10(cfg Config) (*Result, error) {
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	adv := advisor.New(m)
	// Partitioning thresholds scaled to the experiment: TPC-H tables are
	// small at our scale factors.
	adv.Config.MinPartitionRows = 500
	sf := 0.05 * cfg.Scale
	queries := 5000
	if cfg.Scale < 1 {
		queries = int(5000 * cfg.Scale)
		if queries < 200 {
			queries = 200
		}
	}

	// Secondary indexes a DBA maintains for the workload's update
	// predicates (columns that are not a complete primary key). They are
	// materialized in row-store layouts and recorded in the catalog so the
	// cost model's f_selectivity sees them.
	indexes := map[string]int{
		"lineitem": tpch.Schemas()["lineitem"].ColIndex("l_orderkey"),
		"partsupp": tpch.Schemas()["partsupp"].ColIndex("ps_partkey"),
	}
	applyIndexes := func(db *engine.Database) error {
		for t, col := range indexes {
			err := db.CreateIndex(t, col)
			if err != nil && !errors.Is(err, engine.ErrIndexNotMaterialized) {
				// Column-store layouts cannot materialize the index; the
				// declaration is still recorded for row-store layouts.
				return err
			}
		}
		return nil
	}

	// Stats pass + recommendation.
	statsDB := engine.New()
	g, err := tpch.Load(statsDB, sf, cfg.Seed, catalog.ColumnStore)
	if err != nil {
		return nil, err
	}
	if err := applyIndexes(statsDB); err != nil {
		return nil, err
	}
	for _, t := range tpch.TableNames {
		if _, err := statsDB.CollectStats(t); err != nil {
			return nil, err
		}
	}
	info := advisor.InfoFromCatalog(statsDB.Catalog())
	w := tpch.GenWorkload(g, tpch.WorkloadConfig{Queries: queries, OLAPFraction: 0.01, Seed: cfg.Seed})
	rec := adv.Recommend(w, info, nil, nil)

	variants := []struct {
		name   string
		layout func(table string) (catalog.StoreKind, *catalog.PartitionSpec)
	}{
		{"RS only", func(string) (catalog.StoreKind, *catalog.PartitionSpec) {
			return catalog.RowStore, nil
		}},
		{"CS only", func(string) (catalog.StoreKind, *catalog.PartitionSpec) {
			return catalog.ColumnStore, nil
		}},
		{"Table", func(t string) (catalog.StoreKind, *catalog.PartitionSpec) {
			return rec.TableOnly.StoreOf(t), nil
		}},
		{"Partitioned", func(t string) (catalog.StoreKind, *catalog.PartitionSpec) {
			return rec.Layout.Stores.StoreOf(t), rec.Layout.SpecFor(t)
		}},
	}

	res := &Result{Columns: []string{"strategy", "runtime_s"}}
	runtimes := map[string]time.Duration{}
	for _, v := range variants {
		db := engine.New()
		if _, err := tpch.LoadLayout(db, sf, cfg.Seed, v.layout); err != nil {
			return nil, err
		}
		if err := applyIndexes(db); err != nil {
			return nil, err
		}
		t, err := runWorkload(db, w)
		if err != nil {
			return nil, err
		}
		runtimes[v.name] = t
		res.AddRow([]string{v.name, secs(t)}, map[string]float64{
			strings.ToLower(strings.ReplaceAll(v.name, " ", "_")): float64(t),
		})
	}

	// Recommendation summary.
	var columnar []string
	for _, t := range tpch.TableNames {
		if rec.TableOnly.StoreOf(t) == catalog.ColumnStore {
			columnar = append(columnar, t)
		}
	}
	var partitioned []string
	for _, t := range tpch.TableNames {
		if rec.Layout.SpecFor(t) != nil {
			partitioned = append(partitioned, t)
		}
	}
	colNote := "table-level recommendation kept every table in the row store"
	if len(columnar) > 0 {
		colNote = fmt.Sprintf("table-level recommendation put %s into the column store", strings.Join(columnar, ", "))
	}
	partNote := "no tables were partitioned"
	if len(partitioned) > 0 {
		partNote = fmt.Sprintf("partitioned layout touches: %s", strings.Join(partitioned, ", "))
	}
	res.Notes = append(res.Notes,
		colNote,
		partNote,
		fmt.Sprintf("Table vs best single store: %.0f%% of the runtime; Partitioned vs CS only: %.0f%%",
			100*float64(runtimes["Table"])/float64(minDur(runtimes["RS only"], runtimes["CS only"])),
			100*float64(runtimes["Partitioned"])/float64(runtimes["CS only"])),
		"expected ordering: RS only ≈ CS only > Table > Partitioned (paper Fig. 10: −40% and −65%)",
	)
	return res, nil
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
