package colstore

import (
	"fmt"
	"math/rand"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// diffTable builds a table exercising every physical state the vectorized
// pipeline must handle: a merged main fragment with NULLs, a delta tail,
// tombstones from deletes, and migrated rows from updates. Amounts are
// integral so float aggregation is order-independent (sums are exact).
func diffTable(t *testing.T, rng *rand.Rand, n int) *Table {
	t.Helper()
	sch := schema.MustNew("diff",
		[]schema.Column{
			{Name: "id", Type: value.Bigint},
			{Name: "grp", Type: value.Integer, Nullable: true},
			{Name: "amount", Type: value.Double},
			{Name: "note", Type: value.Varchar, Nullable: true},
		}, "id")
	tb := New(sch)
	tb.AutoMerge = false
	rows := make([][]value.Value, 0, n)
	for i := 0; i < n; i++ {
		grp := value.NewInt(rng.Int63n(16))
		if rng.Intn(13) == 0 {
			grp = value.Null(value.Integer)
		}
		note := value.NewVarchar(fmt.Sprintf("s%d", rng.Intn(6)))
		if rng.Intn(9) == 0 {
			note = value.Null(value.Varchar)
		}
		rows = append(rows, []value.Value{
			value.NewBigint(int64(i)), grp,
			value.NewDouble(float64(rng.Intn(500))), note,
		})
	}
	if err := tb.Insert(rows); err != nil {
		t.Fatal(err)
	}
	tb.Merge()
	// Tombstones in main.
	tb.Delete(&expr.Comparison{Col: 2, Op: expr.Lt, Val: value.NewDouble(20)})
	// Migrations (new amount values force the migrate path) and in-place
	// main updates.
	for i := 0; i < 30; i++ {
		id := rng.Int63n(int64(n))
		_, err := tb.Update(
			&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(id)},
			map[int]value.Value{2: value.NewDouble(float64(1000 + rng.Intn(100)))})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Delta tail (with NULLs) on top.
	tail := make([][]value.Value, 0, n/10)
	for i := n; i < n+n/10; i++ {
		grp := value.NewInt(rng.Int63n(16))
		if rng.Intn(13) == 0 {
			grp = value.Null(value.Integer)
		}
		tail = append(tail, []value.Value{
			value.NewBigint(int64(i)), grp,
			value.NewDouble(float64(rng.Intn(500))), value.NewVarchar("d"),
		})
	}
	if err := tb.Insert(tail); err != nil {
		t.Fatal(err)
	}
	return tb
}

// randomPredicate covers both the compiled code-range bitmap path
// (comparisons, BETWEEN, conjunctions) and the fallback shapes (Ne, NULL
// constants, OR, IN, NOT).
func randomPredicate(rng *rand.Rand, n int) expr.Predicate {
	cmp := func() expr.Predicate {
		switch rng.Intn(4) {
		case 0:
			return &expr.Comparison{Col: 0, Op: expr.CmpOp(rng.Intn(6)), Val: value.NewBigint(rng.Int63n(int64(n)))}
		case 1:
			return &expr.Comparison{Col: 1, Op: expr.CmpOp(rng.Intn(6)), Val: value.NewInt(rng.Int63n(16))}
		case 2:
			return &expr.Comparison{Col: 2, Op: expr.CmpOp(rng.Intn(6)), Val: value.NewDouble(float64(rng.Intn(1100)))}
		default:
			return &expr.Comparison{Col: 3, Op: expr.CmpOp(rng.Intn(6)), Val: value.NewVarchar(fmt.Sprintf("s%d", rng.Intn(6)))}
		}
	}
	switch rng.Intn(8) {
	case 0:
		return nil
	case 1:
		return cmp()
	case 2:
		lo := rng.Int63n(int64(n))
		return &expr.Between{Col: 0, Lo: value.NewBigint(lo), Hi: value.NewBigint(lo + rng.Int63n(int64(n)))}
	case 3:
		return &expr.And{Preds: []expr.Predicate{cmp(), cmp()}}
	case 4:
		return &expr.Or{Preds: []expr.Predicate{cmp(), cmp()}}
	case 5:
		return &expr.Not{P: cmp()}
	case 6:
		// NULL constant: matches nothing, exercises the fallback guard.
		return &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.Null(value.Integer)}
	default:
		return &expr.In{Col: 3, Vals: []value.Value{
			value.NewVarchar("s1"), value.NewVarchar("s4"), value.NewVarchar("d"),
		}}
	}
}

// oracleRows is the naive row-materializing oracle: reconstruct every live
// tuple and evaluate the predicate on values.
func oracleRows(tb *Table, pred expr.Predicate) []int32 {
	var out []int32
	for rid := 0; rid < tb.totalRows(); rid++ {
		if !tb.Valid(rid) {
			continue
		}
		if pred == nil || pred.Matches(tb.Get(rid)) {
			out = append(out, int32(rid))
		}
	}
	return out
}

// TestDifferentialScan asserts that the vectorized bitmap pipeline
// (matchingRows, ScanBatches, Scan) yields exactly the oracle's row sets
// and values for randomized predicates.
func TestDifferentialScan(t *testing.T) {
	rng := rand.New(rand.NewSource(20120825))
	tb := diffTable(t, rng, 5000)
	cols := []int{0, 1, 2, 3}
	for trial := 0; trial < 300; trial++ {
		pred := randomPredicate(rng, 5000)
		want := oracleRows(tb, pred)

		got := append([]int32(nil), tb.matchingRows(pred)...)
		if len(got) != len(want) {
			t.Fatalf("trial %d (%v): matchingRows %d rows, oracle %d", trial, pred, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (%v): rid[%d] = %d, oracle %d", trial, pred, i, got[i], want[i])
			}
		}

		// Batched values must equal full tuple reconstruction.
		i := 0
		tb.ScanBatches(pred, cols, func(rids []int32, colVals [][]value.Value) bool {
			for k, rid := range rids {
				if i >= len(want) || rid != want[i] {
					t.Fatalf("trial %d: batch rid %d out of order at %d", trial, rid, i)
				}
				row := tb.Get(int(rid))
				for j, c := range cols {
					if !value.Equal(colVals[j][k], row[c]) {
						t.Fatalf("trial %d rid %d col %d: batch %v, oracle %v",
							trial, rid, c, colVals[j][k], row[c])
					}
				}
				i++
			}
			return true
		})
		if i != len(want) {
			t.Fatalf("trial %d: ScanBatches visited %d of %d rows", trial, i, len(want))
		}
	}
}

// TestDifferentialAggregate asserts grouped and global aggregates computed
// by the vectorized paths are identical to per-row oracle accumulation
// over the oracle's row set.
func TestDifferentialAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(51212))
	tb := diffTable(t, rng, 5000)
	specs := []agg.Spec{
		{Func: agg.Sum, Col: 2},
		{Func: agg.Count, Col: -1},
		{Func: agg.Min, Col: 2},
		{Func: agg.Max, Col: 2},
		{Func: agg.Count, Col: 1},
	}
	groupings := [][]int{nil, {1}, {1, 3}, {1, 2, 3}}
	for trial := 0; trial < 120; trial++ {
		pred := randomPredicate(rng, 5000)
		groupBy := groupings[trial%len(groupings)]

		// Oracle: per-row accumulation over reconstructed tuples.
		want := agg.NewResult(specs, groupBy)
		key := make([]value.Value, len(groupBy))
		for _, rid := range oracleRows(tb, pred) {
			row := tb.Get(int(rid))
			var g *agg.Group
			if len(groupBy) > 0 {
				for i, c := range groupBy {
					key[i] = row[c]
				}
				g = want.GroupFor(key)
			} else {
				g = want.Global()
			}
			for si, s := range specs {
				if s.Col < 0 {
					g.Accs[si].AddCount(1)
				} else {
					g.Accs[si].Add(row[s.Col])
				}
			}
		}

		got := tb.Aggregate(specs, groupBy, pred)
		if got.NumGroups() != want.NumGroups() {
			t.Fatalf("trial %d (%v, group %v): %d groups, oracle %d",
				trial, pred, groupBy, got.NumGroups(), want.NumGroups())
		}
		index := map[string][]value.Value{}
		for _, row := range want.Rows() {
			k := ""
			for i := 0; i < len(groupBy); i++ {
				k += row[i].Key() + "\x1f"
			}
			index[k] = row
		}
		for _, row := range got.Rows() {
			k := ""
			for i := 0; i < len(groupBy); i++ {
				k += row[i].Key() + "\x1f"
			}
			wrow, ok := index[k]
			if !ok {
				t.Fatalf("trial %d: group %v missing in oracle", trial, row[:len(groupBy)])
			}
			for i := range row {
				if !value.Equal(row[i], wrow[i]) {
					t.Fatalf("trial %d (%v, group %v) col %d: vectorized %v, oracle %v",
						trial, pred, groupBy, i, row[i], wrow[i])
				}
			}
		}
	}
}
