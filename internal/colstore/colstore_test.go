package colstore

import (
	"fmt"
	"math/rand"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/rowstore"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func testSchema() *schema.Table {
	return schema.MustNew("items",
		[]schema.Column{
			{Name: "id", Type: value.Bigint},
			{Name: "grp", Type: value.Integer},
			{Name: "amount", Type: value.Double},
			{Name: "note", Type: value.Varchar, Nullable: true},
		}, "id")
}

func mkRow(id, grp int64, amount float64, note string) []value.Value {
	return []value.Value{value.NewBigint(id), value.NewInt(grp), value.NewDouble(amount), value.NewVarchar(note)}
}

func loaded(t *testing.T, n int) *Table {
	t.Helper()
	tb := New(testSchema())
	rows := make([][]value.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, mkRow(int64(i), int64(i%5), float64(i), fmt.Sprintf("n%d", i%7)))
	}
	if err := tb.Insert(rows); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestInsertAndGet(t *testing.T) {
	tb := loaded(t, 10)
	if tb.Rows() != 10 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	row := tb.Get(3)
	if row[0].Int() != 3 || row[2].Double() != 3 {
		t.Errorf("Get(3) = %v", row)
	}
	if tb.Schema().Name != "items" {
		t.Error("Schema accessor broken")
	}
	if !tb.Valid(3) {
		t.Error("Valid broken")
	}
}

func TestInsertValidatesAndChecksPK(t *testing.T) {
	tb := loaded(t, 5)
	if err := tb.Insert([][]value.Value{{value.NewInt(1)}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := tb.Insert([][]value.Value{mkRow(3, 0, 0, "dup")}); err == nil {
		t.Error("duplicate PK accepted")
	}
	if tb.Rows() != 5 {
		t.Errorf("rows after failures = %d", tb.Rows())
	}
}

func TestLookupPK(t *testing.T) {
	tb := loaded(t, 100)
	rid, ok := tb.LookupPK([]value.Value{value.NewBigint(42)})
	if !ok || tb.Get(rid)[0].Int() != 42 {
		t.Errorf("LookupPK = %d, %v", rid, ok)
	}
	if _, ok := tb.LookupPK([]value.Value{value.NewBigint(4200)}); ok {
		t.Error("missing key found")
	}
}

func TestMergeCompactsAndPreservesData(t *testing.T) {
	tb := loaded(t, 50)
	if tb.DeltaRows() != 50 {
		t.Errorf("delta = %d before merge", tb.DeltaRows())
	}
	tb.Merge()
	if tb.DeltaRows() != 0 || tb.Rows() != 50 {
		t.Errorf("after merge: delta=%d rows=%d", tb.DeltaRows(), tb.Rows())
	}
	if tb.Merges() != 1 {
		t.Errorf("merges = %d", tb.Merges())
	}
	for i := 0; i < 50; i++ {
		rid, ok := tb.LookupPK([]value.Value{value.NewBigint(int64(i))})
		if !ok {
			t.Fatalf("key %d lost after merge", i)
		}
		if got := tb.Get(rid)[2].Double(); got != float64(i) {
			t.Fatalf("value for %d = %v", i, got)
		}
	}
	// Merge with nothing to do is a no-op.
	tb.Merge()
	if tb.Merges() != 1 {
		t.Error("no-op merge counted")
	}
}

func TestAutoMerge(t *testing.T) {
	tb := New(testSchema())
	tb.MergeThreshold = 0.1
	batch := make([][]value.Value, 0, 1000)
	for i := 0; i < 10000; i++ {
		batch = append(batch, mkRow(int64(i), int64(i%5), float64(i), "x"))
		if len(batch) == 1000 {
			if err := tb.Insert(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if tb.Merges() == 0 {
		t.Error("auto-merge never triggered")
	}
	if tb.Rows() != 10000 {
		t.Errorf("rows = %d", tb.Rows())
	}
}

func TestScanPredicateFastPath(t *testing.T) {
	tb := loaded(t, 100)
	tb.Merge() // half the data in main...
	if err := tb.Insert([][]value.Value{mkRow(100, 2, 100, "d"), mkRow(101, 3, 101, "d")}); err != nil {
		t.Fatal(err)
	}
	pred := &expr.And{Preds: []expr.Predicate{
		&expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(2)},
		&expr.Comparison{Col: 2, Op: expr.Ge, Val: value.NewDouble(50)},
	}}
	var ids []int64
	tb.Scan(pred, []int{0}, func(rid int, row []value.Value) bool {
		ids = append(ids, row[0].Int())
		return true
	})
	// grp==2: ids 2,7,...,97 and 100; amount>=50: 52,57,...,97,100
	want := 11
	if len(ids) != want {
		t.Errorf("matched %d ids: %v", len(ids), ids)
	}
}

func TestScanBetween(t *testing.T) {
	tb := loaded(t, 50)
	tb.Merge()
	pred := &expr.Between{Col: 0, Lo: value.NewBigint(10), Hi: value.NewBigint(19)}
	count := 0
	tb.Scan(pred, []int{0}, func(rid int, row []value.Value) bool {
		count++
		return true
	})
	if count != 10 {
		t.Errorf("BETWEEN matched %d", count)
	}
}

func TestScanFallbackOr(t *testing.T) {
	tb := loaded(t, 30)
	pred := &expr.Or{Preds: []expr.Predicate{
		&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(3)},
		&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(7)},
	}}
	count := 0
	tb.Scan(pred, nil, func(rid int, row []value.Value) bool {
		count++
		return true
	})
	if count != 2 {
		t.Errorf("OR matched %d", count)
	}
}

func TestScanPKShortcut(t *testing.T) {
	tb := loaded(t, 100)
	pred := &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(55)}
	var got []int64
	tb.Scan(pred, []int{0, 2}, func(rid int, row []value.Value) bool {
		got = append(got, row[0].Int())
		return true
	})
	if len(got) != 1 || got[0] != 55 {
		t.Errorf("PK scan = %v", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tb := loaded(t, 30)
	count := 0
	tb.Scan(nil, nil, func(rid int, row []value.Value) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestAggregateGlobalAcrossFragments(t *testing.T) {
	tb := loaded(t, 100) // all in delta
	tb.Merge()
	// Add 10 more rows in delta so both fragments contribute.
	extra := make([][]value.Value, 0, 10)
	for i := 100; i < 110; i++ {
		extra = append(extra, mkRow(int64(i), int64(i%5), float64(i), "x"))
	}
	if err := tb.Insert(extra); err != nil {
		t.Fatal(err)
	}
	res := tb.Aggregate([]agg.Spec{
		{Func: agg.Sum, Col: 2},
		{Func: agg.Count, Col: -1},
		{Func: agg.Min, Col: 2},
		{Func: agg.Max, Col: 2},
	}, nil, nil)
	rows := res.Rows()
	wantSum := float64(109*110) / 2
	if rows[0][0].Double() != wantSum {
		t.Errorf("SUM = %v, want %v", rows[0][0], wantSum)
	}
	if rows[0][1].Int() != 110 {
		t.Errorf("COUNT = %v", rows[0][1])
	}
	if rows[0][2].Double() != 0 || rows[0][3].Double() != 109 {
		t.Errorf("MIN/MAX = %v/%v", rows[0][2], rows[0][3])
	}
}

func TestAggregateWithPredicate(t *testing.T) {
	tb := loaded(t, 100)
	tb.Merge()
	pred := &expr.Comparison{Col: 2, Op: expr.Lt, Val: value.NewDouble(10)}
	res := tb.Aggregate([]agg.Spec{{Func: agg.Sum, Col: 2}}, nil, pred)
	if got := res.Rows()[0][0].Double(); got != 45 {
		t.Errorf("filtered SUM = %v", got)
	}
}

func TestAggregateSingleGroup(t *testing.T) {
	tb := loaded(t, 100)
	tb.Merge()
	if err := tb.Insert([][]value.Value{mkRow(100, 0, 1000, "x")}); err != nil {
		t.Fatal(err)
	}
	res := tb.Aggregate([]agg.Spec{{Func: agg.Count, Col: -1}, {Func: agg.Sum, Col: 2}}, []int{1}, nil)
	if res.NumGroups() != 5 {
		t.Fatalf("groups = %d", res.NumGroups())
	}
	counts := map[int64]int64{}
	for _, row := range res.Rows() {
		counts[row[0].Int()] = row[1].Int()
	}
	if counts[0] != 21 { // 20 + the extra row
		t.Errorf("group 0 count = %d", counts[0])
	}
	for g := int64(1); g < 5; g++ {
		if counts[g] != 20 {
			t.Errorf("group %d count = %d", g, counts[g])
		}
	}
}

func TestAggregateMultiGroup(t *testing.T) {
	tb := loaded(t, 20)
	res := tb.Aggregate([]agg.Spec{{Func: agg.Count, Col: -1}}, []int{1, 3}, nil)
	// grp has 5 values, note has 7 values; with 20 rows keyed by i%5 and
	// i%7 there are 20 distinct (i%5, i%7) pairs.
	if res.NumGroups() != 20 {
		t.Errorf("multi-group count = %d", res.NumGroups())
	}
}

func TestAggregateNullHandling(t *testing.T) {
	sch := schema.MustNew("t", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "v", Type: value.Double, Nullable: true},
	}, "id")
	tb := New(sch)
	rows := [][]value.Value{
		{value.NewBigint(1), value.NewDouble(10)},
		{value.NewBigint(2), value.Null(value.Double)},
		{value.NewBigint(3), value.NewDouble(20)},
	}
	if err := tb.Insert(rows); err != nil {
		t.Fatal(err)
	}
	check := func() {
		res := tb.Aggregate([]agg.Spec{{Func: agg.Sum, Col: 1}, {Func: agg.Count, Col: -1}}, nil, nil)
		r := res.Rows()[0]
		if r[0].Double() != 30 {
			t.Errorf("SUM with NULL = %v", r[0])
		}
		if r[1].Int() != 3 {
			t.Errorf("COUNT(*) = %v", r[1])
		}
	}
	check()
	tb.Merge() // NULLs must survive the merge
	check()
}

func TestUpdateInPlaceDelta(t *testing.T) {
	tb := loaded(t, 10) // all in delta
	pred := &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(3)}
	n, err := tb.Update(pred, map[int]value.Value{2: value.NewDouble(333)})
	if err != nil || n != 1 {
		t.Fatalf("update: %d, %v", n, err)
	}
	rid, _ := tb.LookupPK([]value.Value{value.NewBigint(3)})
	if got := tb.Get(rid)[2].Double(); got != 333 {
		t.Errorf("updated value = %v", got)
	}
	if tb.Rows() != 10 {
		t.Errorf("rows changed: %d", tb.Rows())
	}
}

func TestUpdateMigratesMainRow(t *testing.T) {
	tb := loaded(t, 10)
	tb.Merge() // everything in main
	pred := &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(5)}
	// -1 is not in the main dictionary, forcing a migrate.
	n, err := tb.Update(pred, map[int]value.Value{2: value.NewDouble(-1)})
	if err != nil || n != 1 {
		t.Fatalf("update: %d, %v", n, err)
	}
	if tb.DeltaRows() != 1 {
		t.Errorf("expected row migration to delta, delta=%d", tb.DeltaRows())
	}
	rid, ok := tb.LookupPK([]value.Value{value.NewBigint(5)})
	if !ok || tb.Get(rid)[2].Double() != -1 {
		t.Errorf("migrated row wrong: %v", tb.Get(rid))
	}
	if tb.Rows() != 10 {
		t.Errorf("live rows = %d", tb.Rows())
	}
	// Aggregates must see exactly one row per id.
	res := tb.Aggregate([]agg.Spec{{Func: agg.Count, Col: -1}}, nil, nil)
	if res.Rows()[0][0].Int() != 10 {
		t.Errorf("count after migrate = %v", res.Rows()[0][0])
	}
}

func TestUpdateInPlaceMainWhenValueInDict(t *testing.T) {
	tb := loaded(t, 10)
	tb.Merge()
	// amount 7 exists in the dictionary, so updating id 2's amount to 7
	// can be done in place.
	pred := &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(2)}
	n, err := tb.Update(pred, map[int]value.Value{2: value.NewDouble(7)})
	if err != nil || n != 1 {
		t.Fatalf("update: %d, %v", n, err)
	}
	if tb.DeltaRows() != 0 {
		t.Errorf("in-place update should not touch delta: %d", tb.DeltaRows())
	}
	rid, _ := tb.LookupPK([]value.Value{value.NewBigint(2)})
	if got := tb.Get(rid)[2].Double(); got != 7 {
		t.Errorf("value = %v", got)
	}
}

func TestUpdatePKMaintainsIndex(t *testing.T) {
	tb := loaded(t, 10)
	tb.Merge()
	pred := &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(4)}
	n, err := tb.Update(pred, map[int]value.Value{0: value.NewBigint(400)})
	if err != nil || n != 1 {
		t.Fatalf("update: %d, %v", n, err)
	}
	if _, ok := tb.LookupPK([]value.Value{value.NewBigint(4)}); ok {
		t.Error("old PK still resolvable")
	}
	if _, ok := tb.LookupPK([]value.Value{value.NewBigint(400)}); !ok {
		t.Error("new PK not resolvable")
	}
}

func TestUpdateValidates(t *testing.T) {
	tb := loaded(t, 5)
	if _, err := tb.Update(nil, map[int]value.Value{2: value.NewInt(1)}); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := tb.Update(nil, map[int]value.Value{0: value.Null(value.Bigint)}); err == nil {
		t.Error("NULL into NOT NULL accepted")
	}
	if _, err := tb.Update(nil, map[int]value.Value{-1: value.NewInt(1)}); err == nil {
		t.Error("bad column accepted")
	}
}

func TestDelete(t *testing.T) {
	tb := loaded(t, 20)
	tb.Merge()
	n := tb.Delete(&expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(0)})
	if n != 4 || tb.Rows() != 16 {
		t.Errorf("Delete = %d, Rows = %d", n, tb.Rows())
	}
	if _, ok := tb.LookupPK([]value.Value{value.NewBigint(0)}); ok {
		t.Error("deleted key still resolvable")
	}
	res := tb.Aggregate([]agg.Spec{{Func: agg.Count, Col: -1}}, nil, nil)
	if res.Rows()[0][0].Int() != 16 {
		t.Errorf("count after delete = %v", res.Rows()[0][0])
	}
	// Merge reclaims tombstones.
	tb.Merge()
	if tb.Rows() != 16 {
		t.Errorf("rows after compacting merge = %d", tb.Rows())
	}
	// Re-insert of a deleted key is allowed.
	if err := tb.Insert([][]value.Value{mkRow(0, 0, 0, "back")}); err != nil {
		t.Errorf("re-insert: %v", err)
	}
}

func TestCompressionRateAndMemory(t *testing.T) {
	tb := loaded(t, 1000)
	tb.Merge()
	// grp has 5 distinct values over 1000 rows: compresses very well.
	rGrp := tb.CompressionRate(1)
	// id is unique: compresses poorly.
	rID := tb.CompressionRate(0)
	if rGrp < 0.5 {
		t.Errorf("grp compression rate = %v", rGrp)
	}
	if rGrp <= rID {
		t.Errorf("expected grp (%v) to compress better than id (%v)", rGrp, rID)
	}
	if tb.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
	if tb.DistinctCount(1) != 5 {
		t.Errorf("DistinctCount(grp) = %d", tb.DistinctCount(1))
	}
}

// Regression: the raw dictionary sum (main + delta) overcounts NDV when
// delta values overlap the main dictionary or rows are deleted; the
// estimate feeds planner cardinality, so it must stay within [1, Rows()].
func TestDistinctCountClampedOnSkewedColumn(t *testing.T) {
	tb := New(testSchema())
	tb.AutoMerge = false
	// Main fragment: 100 rows, grp cycles over the same 3 values.
	rows := make([][]value.Value, 0, 100)
	for i := 0; i < 100; i++ {
		rows = append(rows, mkRow(int64(i), int64(i%3), float64(i), "x"))
	}
	if err := tb.Insert(rows); err != nil {
		t.Fatal(err)
	}
	tb.Merge()
	// Delta fragment: the same 3 skewed values again — every delta
	// dictionary entry overlaps main.
	rows = rows[:0]
	for i := 100; i < 200; i++ {
		rows = append(rows, mkRow(int64(i), int64(i%3), float64(i), "x"))
	}
	if err := tb.Insert(rows); err != nil {
		t.Fatal(err)
	}
	if d := tb.DistinctCount(1); d < 1 || d > tb.Rows() {
		t.Fatalf("DistinctCount(grp) = %d outside [1, %d]", d, tb.Rows())
	}
	// Delete almost everything: dictionaries keep their entries but the
	// estimate must not exceed the surviving rows.
	tb.Delete(&expr.Comparison{Col: 0, Op: expr.Lt, Val: value.NewBigint(198)})
	if live := tb.Rows(); live != 2 {
		t.Fatalf("Rows after delete = %d, want 2", live)
	}
	for col := 0; col < 4; col++ {
		if d := tb.DistinctCount(col); d < 1 || d > 2 {
			t.Fatalf("DistinctCount(%d) = %d outside [1, 2] after mass delete", col, d)
		}
	}
}

func TestMinMax(t *testing.T) {
	tb := loaded(t, 100)
	tb.Merge()
	if err := tb.Insert([][]value.Value{mkRow(500, 9, -50, "x")}); err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := tb.MinMax(2)
	if !ok || lo.Double() != -50 || hi.Double() != 99 {
		t.Errorf("MinMax = %v, %v, %v", lo, hi, ok)
	}
	empty := New(testSchema())
	if _, _, ok := empty.MinMax(0); ok {
		t.Error("empty table should have no MinMax")
	}
}

// Cross-validation: the column store and row store must produce identical
// results for random data, predicates and aggregations.
func TestColumnRowStoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sch := testSchema()
	cs := New(sch)
	rs := rowstore.New(sch)
	var rows [][]value.Value
	for i := 0; i < 500; i++ {
		rows = append(rows, mkRow(int64(i), rng.Int63n(8), float64(rng.Intn(100)), fmt.Sprintf("s%d", rng.Intn(4))))
	}
	if err := cs.Insert(rows); err != nil {
		t.Fatal(err)
	}
	if err := rs.Insert(rows); err != nil {
		t.Fatal(err)
	}
	cs.Merge()
	for trial := 0; trial < 50; trial++ {
		var pred expr.Predicate
		switch trial % 4 {
		case 0:
			pred = &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(rng.Int63n(8))}
		case 1:
			pred = &expr.Comparison{Col: 2, Op: expr.Ge, Val: value.NewDouble(float64(rng.Intn(100)))}
		case 2:
			pred = &expr.Between{Col: 0, Lo: value.NewBigint(rng.Int63n(250)), Hi: value.NewBigint(250 + rng.Int63n(250))}
		case 3:
			pred = nil
		}
		specs := []agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Count, Col: -1}, {Func: agg.Min, Col: 2}, {Func: agg.Max, Col: 2}}
		var groupBy []int
		if trial%2 == 0 {
			groupBy = []int{1}
		}
		cres := cs.Aggregate(specs, groupBy, pred)
		rres := rs.Aggregate(specs, groupBy, pred)
		if cres.NumGroups() != rres.NumGroups() {
			t.Fatalf("trial %d: group counts differ: cs=%d rs=%d", trial, cres.NumGroups(), rres.NumGroups())
		}
		csums := map[string][]value.Value{}
		for _, row := range cres.Rows() {
			key := ""
			if groupBy != nil {
				key = row[0].String()
			}
			csums[key] = row
		}
		for _, row := range rres.Rows() {
			key := ""
			if groupBy != nil {
				key = row[0].String()
			}
			crow, ok := csums[key]
			if !ok {
				t.Fatalf("trial %d: group %q missing in column store", trial, key)
			}
			for i := range row {
				if crow[i].IsNull() != row[i].IsNull() {
					t.Fatalf("trial %d: null mismatch at %d", trial, i)
				}
				if !row[i].IsNull() && crow[i].Float() != row[i].Float() {
					t.Fatalf("trial %d group %q col %d: cs=%v rs=%v", trial, key, i, crow[i], row[i])
				}
			}
		}
	}
}

// Mutation equivalence under random updates and deletes.
func TestMutationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sch := testSchema()
	cs := New(sch)
	rs := rowstore.New(sch)
	var rows [][]value.Value
	for i := 0; i < 300; i++ {
		rows = append(rows, mkRow(int64(i), rng.Int63n(5), float64(i), "x"))
	}
	if err := cs.Insert(rows); err != nil {
		t.Fatal(err)
	}
	if err := rs.Insert(rows); err != nil {
		t.Fatal(err)
	}
	cs.Merge()
	for step := 0; step < 60; step++ {
		id := rng.Int63n(300)
		pred := &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(id)}
		switch step % 3 {
		case 0:
			set := map[int]value.Value{2: value.NewDouble(float64(rng.Intn(1000)))}
			cn, cerr := cs.Update(pred, set)
			rn, rerr := rs.Update(pred, set)
			if cn != rn || (cerr == nil) != (rerr == nil) {
				t.Fatalf("step %d: update mismatch cs=%d,%v rs=%d,%v", step, cn, cerr, rn, rerr)
			}
		case 1:
			cn := cs.Delete(pred)
			rn := rs.Delete(pred)
			if cn != rn {
				t.Fatalf("step %d: delete mismatch cs=%d rs=%d", step, cn, rn)
			}
		case 2:
			if step%6 == 2 {
				cs.Merge()
			}
		}
		if cs.Rows() != rs.Rows() {
			t.Fatalf("step %d: row counts diverged cs=%d rs=%d", step, cs.Rows(), rs.Rows())
		}
	}
	cres := cs.Aggregate([]agg.Spec{{Func: agg.Sum, Col: 2}}, nil, nil)
	rres := rs.Aggregate([]agg.Spec{{Func: agg.Sum, Col: 2}}, nil, nil)
	if cres.Rows()[0][0].Double() != rres.Rows()[0][0].Double() {
		t.Fatalf("final sums diverged: cs=%v rs=%v", cres.Rows()[0][0], rres.Rows()[0][0])
	}
}

func TestScanEmptyCols(t *testing.T) {
	tb := loaded(t, 30)
	tb.Merge()
	// Empty (non-nil) cols streams rids without materializing values.
	count := 0
	tb.Scan(&expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(2)}, []int{}, func(rid int, row []value.Value) bool {
		count++
		return true
	})
	if count != 6 {
		t.Errorf("empty-cols scan matched %d", count)
	}
	tb.ScanBatches(nil, []int{}, func(rids []int32, colVals [][]value.Value) bool {
		if len(colVals) != 0 {
			t.Errorf("expected no column buffers, got %d", len(colVals))
		}
		return true
	})
}

func TestUpdatePKDuplicateRejected(t *testing.T) {
	for _, merged := range []bool{false, true} {
		name := "delta"
		if merged {
			name = "main"
		}
		t.Run(name, func(t *testing.T) {
			tb := loaded(t, 10)
			if merged {
				tb.Merge()
			}
			n, err := tb.Update(&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(3)},
				map[int]value.Value{0: value.NewBigint(5), 2: value.NewDouble(999)})
			if err == nil {
				t.Fatalf("duplicate-PK update succeeded (%d rows)", n)
			}
			if tb.Rows() != 10 {
				t.Fatalf("rows = %d, want 10", tb.Rows())
			}
			rid, ok := tb.LookupPK([]value.Value{value.NewBigint(3)})
			if !ok {
				t.Fatal("row 3 lost after failed update")
			}
			if got := tb.Get(rid)[2].Double(); got != 3 {
				t.Fatalf("failed update mutated amount: %v (atomicity broken)", got)
			}
			if _, ok := tb.LookupPK([]value.Value{value.NewBigint(5)}); !ok {
				t.Fatal("row 5 lost after failed update")
			}
			// Intra-statement duplicate: one constant key, several rows.
			if _, err := tb.Update(&expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(1)},
				map[int]value.Value{0: value.NewBigint(500)}); err == nil {
				t.Fatal("multi-row constant-PK update succeeded")
			}
			if _, ok := tb.LookupPK([]value.Value{value.NewBigint(500)}); ok {
				t.Fatal("partial application of rejected update")
			}
			// Clean PK change maintains the index in both fragments.
			if n, err := tb.Update(&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(3)},
				map[int]value.Value{0: value.NewBigint(300)}); err != nil || n != 1 {
				t.Fatalf("clean PK update: n=%d err=%v", n, err)
			}
			if _, ok := tb.LookupPK([]value.Value{value.NewBigint(3)}); ok {
				t.Fatal("old key still resolves")
			}
			if _, ok := tb.LookupPK([]value.Value{value.NewBigint(300)}); !ok {
				t.Fatal("new key does not resolve")
			}
		})
	}
}

func TestFragmentRowsAndLoad(t *testing.T) {
	tb := loaded(t, 30)
	tb.Merge()
	if err := tb.Insert([][]value.Value{
		mkRow(100, 1, 100, "d1"), mkRow(101, 2, 101, "d2"),
	}); err != nil {
		t.Fatal(err)
	}
	tb.Delete(&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(4)})

	var main, delta [][]value.Value
	tb.FragmentRows(func(row []value.Value, inMain bool) bool {
		if inMain {
			main = append(main, row)
		} else {
			delta = append(delta, row)
		}
		return true
	})
	if len(main) != 29 || len(delta) != 2 {
		t.Fatalf("fragments: main %d delta %d, want 29/2", len(main), len(delta))
	}

	re, err := Load(testSchema(), main, delta)
	if err != nil {
		t.Fatal(err)
	}
	if re.Rows() != 31 || re.DeltaRows() != 2 {
		t.Fatalf("loaded rows=%d delta=%d, want 31/2", re.Rows(), re.DeltaRows())
	}
	if re.Merges() != 0 {
		t.Fatalf("load counted %d workload merges", re.Merges())
	}
	for _, id := range []int64{0, 3, 5, 29, 100, 101} {
		if _, ok := re.LookupPK([]value.Value{value.NewBigint(id)}); !ok {
			t.Fatalf("key %d missing after load", id)
		}
	}
	if _, ok := re.LookupPK([]value.Value{value.NewBigint(4)}); ok {
		t.Fatal("deleted key resurrected by load")
	}
}

func TestInsertBatchAtomic(t *testing.T) {
	tb := loaded(t, 5)
	err := tb.Insert([][]value.Value{mkRow(100, 0, 1, "x"), mkRow(3, 0, 1, "y")})
	if err == nil {
		t.Fatal("colliding batch accepted")
	}
	if tb.Rows() != 5 {
		t.Fatalf("rows = %d after failed batch, want 5", tb.Rows())
	}
	if _, ok := tb.LookupPK([]value.Value{value.NewBigint(100)}); ok {
		t.Fatal("prefix of failed batch retained")
	}
	err = tb.Insert([][]value.Value{mkRow(200, 0, 1, "x"), mkRow(200, 0, 2, "y")})
	if err == nil {
		t.Fatal("intra-batch duplicate accepted")
	}
	if tb.Rows() != 5 {
		t.Fatalf("rows = %d after intra-dup batch, want 5", tb.Rows())
	}
}
