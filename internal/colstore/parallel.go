package colstore

import (
	"sort"

	"hybridstore/internal/agg"
	"hybridstore/internal/bitset"
	"hybridstore/internal/exec"
	"hybridstore/internal/expr"
	"hybridstore/internal/trace"
	"hybridstore/internal/value"
)

// parallelMinRows is the table size below which scans and aggregations
// stay serial: the per-worker state setup outweighs the work.
const parallelMinRows = 8 * blockRows

// denseParallelCells caps the per-worker dense accumulator arrays
// (groups x specs cells). Beyond it grouped aggregation stays serial
// rather than multiplying a huge array by the worker count.
const denseParallelCells = 1 << 18

// globalCountsLimit is the largest main dictionary for which the
// parallel ungrouped path keeps per-worker per-code count arrays (the
// compression-aware fast path); larger dictionaries switch to scalar
// code accumulators so memory stays bounded.
const globalCountsLimit = 1 << 16

// denseGroupCtx demotes ex to serial when the dense group space is too
// large to replicate per worker.
func denseGroupCtx(ex *exec.Ctx, gTotal, nspec int) *exec.Ctx {
	if nspec < 1 {
		nspec = 1
	}
	if gTotal > denseParallelCells/nspec {
		return &exec.Ctx{Stop: ex.StopHook(), Trace: ex.Tracer()}
	}
	return ex
}

// NumBlocks returns the number of blockRows-sized scan blocks (the
// morsel count of a full scan over this table).
func (t *Table) NumBlocks() int { return (t.totalRows() + blockRows - 1) / blockRows }

func (t *Table) numMainBlocks() int { return (t.mainRows + blockRows - 1) / blockRows }

// matchBitmapExec is matchBitmap with morsel parallelism: main-fragment
// blocks are claimed from a shared counter and every conjunct is applied
// to a block before the next is claimed. Blocks are bitset-word aligned,
// so concurrent workers write disjoint words; the delta passes and the
// tombstone AND run serially afterwards (the delta fragment is small and
// shares its first word with the last main block).
func (t *Table) matchBitmapExec(pred expr.Predicate, s *scanScratch, ex *exec.Ctx) bitset.Bits {
	nb := t.numMainBlocks()
	if t.totalRows() < parallelMinRows || !ex.Parallel(nb) {
		return t.matchBitmapTraced(pred, s, ex.Tracer())
	}
	matchers, ok := t.compileMatchers(pred)
	if !ok {
		return t.fallbackBitmapExec(pred, s, ex)
	}
	if len(matchers) == 0 {
		return nil
	}
	sort.Slice(matchers, func(i, j int) bool {
		return t.matcherSelectivity(&matchers[i]) < t.matcherSelectivity(&matchers[j])
	})
	match := s.bits(t.totalRows())
	workers := ex.Workers(nb)
	blockWords := make([][]uint64, workers)
	counts := make([]scanCounts, workers)
	ex.Morsels(nb, func(w, b int) bool {
		bw := blockWords[w]
		if bw == nil {
			bw = make([]uint64, blockRows/64)
			blockWords[w] = bw
		}
		sc := &counts[w]
		b0 := b * blockRows
		sc.count(t.fillMatcherBlock(&matchers[0], match, b0, true, bw))
		for i := 1; i < len(matchers); i++ {
			sc.count(t.fillMatcherBlock(&matchers[i], match, b0, false, bw))
		}
		return true
	})
	var sc scanCounts
	for w := range counts {
		sc.add(counts[w])
	}
	sc.report(ex.Tracer())
	for i := range matchers {
		t.fillMatcherDelta(&matchers[i], match, i == 0)
	}
	if t.live != t.totalRows() {
		match.And(t.liveSet[:len(match)])
	}
	return match
}

// fallbackBitmapExec is fallbackBitmap with one block per morsel: each
// worker materializes rows into private scratch and sets bits in its
// block's (word-disjoint) region of the shared bitmap.
func (t *Table) fallbackBitmapExec(pred expr.Predicate, s *scanScratch, ex *exec.Ctx) bitset.Bits {
	cols := expr.ColumnSet(pred)
	match := s.bits(t.totalRows())
	match.Zero()
	total := t.totalRows()
	mainRows := t.mainRows
	live := t.liveSet
	type fbState struct {
		scratch    []value.Value
		blockCodes [][]uint32
	}
	nb := t.NumBlocks()
	states := make([]*fbState, ex.Workers(nb))
	ex.Morsels(nb, func(w, b int) bool {
		st := states[w]
		if st == nil {
			st = &fbState{
				scratch:    make([]value.Value, len(t.cols)),
				blockCodes: make([][]uint32, len(cols)),
			}
			for j := range st.blockCodes {
				st.blockCodes[j] = make([]uint32, blockRows)
			}
			states[w] = st
		}
		b0 := b * blockRows
		n := min(blockRows, total-b0)
		if !live.AnyRange(b0, b0+n) {
			return true
		}
		mainN := 0
		if b0 < mainRows {
			mainN = min(n, mainRows-b0)
		}
		for j, cidx := range cols {
			if mainN > 0 {
				t.cols[cidx].mainCodes.UnpackBlock(b0, st.blockCodes[j][:mainN])
			}
		}
		scratch := st.scratch
		for i := 0; i < n; i++ {
			rid := b0 + i
			if !live.Get(rid) {
				continue
			}
			for j, cidx := range cols {
				c := &t.cols[cidx]
				if i < mainN {
					if c.mainNulls != nil && c.mainNulls[rid] {
						scratch[cidx] = value.Null(c.typ)
					} else {
						scratch[cidx] = c.mainDict.Value(st.blockCodes[j][i])
					}
				} else {
					d := rid - mainRows
					if c.deltaNulls != nil && c.deltaNulls[d] {
						scratch[cidx] = value.Null(c.typ)
					} else {
						scratch[cidx] = c.deltaDict.Value(c.deltaCodes[d])
					}
				}
			}
			if pred.Matches(scratch) {
				match.Set(rid)
			}
		}
		return true
	})
	return match
}

// forBatchesExec is forBatches driven by the execution context: one scan
// block per morsel, each worker building the batch rid list in a private
// buffer. fn must be safe for concurrent calls with distinct worker ids;
// batch order across workers is not defined. The serial path (small
// table, no pool, single slot) preserves forBatches' ascending order and
// polls the cancellation hook between blocks.
func (t *Table) forBatchesExec(match bitset.Bits, ex *exec.Ctx, fn func(w int, rids []int32, b0, nm, mainN int) bool) {
	total := t.totalRows()
	nb := t.NumBlocks()
	if total < parallelMinRows || !ex.Parallel(nb) {
		stop := ex.StopHook()
		var mainRows, deltaRows int64
		t.forBatches(match, func(rids []int32, b0, nm, mainN int) bool {
			if stop != nil && stop() {
				return false
			}
			mainRows += int64(nm)
			deltaRows += int64(len(rids) - nm)
			return fn(0, rids, b0, nm, mainN)
		})
		reportFragmentRows(ex.Tracer(), mainRows, deltaRows)
		return
	}
	src := t.rowSource(match)
	workers := ex.Workers(nb)
	ridBufs := make([][]int32, workers)
	type fragRows struct{ main, delta int64 }
	frags := make([]fragRows, workers)
	ex.Morsels(nb, func(w, b int) bool {
		b0 := b * blockRows
		n := min(blockRows, total-b0)
		rids := ridBufs[w]
		if rids == nil {
			rids = make([]int32, 0, blockRows)
		}
		rids = src.AppendSet(rids[:0], b0, b0+n)
		ridBufs[w] = rids
		if len(rids) == 0 {
			return true
		}
		nm, mainN := t.splitBatch(rids, b0, n)
		frags[w].main += int64(nm)
		frags[w].delta += int64(len(rids) - nm)
		return fn(w, rids, b0, nm, mainN)
	})
	var mainRows, deltaRows int64
	for w := range frags {
		mainRows += frags[w].main
		deltaRows += frags[w].delta
	}
	reportFragmentRows(ex.Tracer(), mainRows, deltaRows)
}

// reportFragmentRows folds one batch stream's delta-vs-main split into
// the cumulative metrics and the statement trace.
func reportFragmentRows(tr *trace.Trace, mainRows, deltaRows int64) {
	if mainRows == 0 && deltaRows == 0 {
		return
	}
	mScanMainRows.Add(mainRows)
	mScanDeltaRows.Add(deltaRows)
	if tr != nil {
		tr.Add("main_rows", mainRows)
		tr.Add("delta_rows", deltaRows)
	}
}

// aggregateGlobalExec computes ungrouped aggregates. Small tables and
// serial contexts use aggregateGlobal's per-code counting verbatim; the
// parallel path claims main-fragment blocks as morsels with per-worker
// count arrays (small dictionaries) or scalar code accumulators (large
// ones), then folds per code exactly like the serial path. The delta
// fragment stays serial — it is bounded by the merge threshold.
func (t *Table) aggregateGlobalExec(res *agg.Result, specs []agg.Spec, match bitset.Bits, s *scanScratch, ex *exec.Ctx) {
	nb := t.numMainBlocks()
	if t.mainRows < parallelMinRows || !ex.Parallel(nb) {
		t.aggregateGlobal(res, specs, match, s, ex.StopHook())
		return
	}
	g := res.Global()
	dense := match == nil && t.live == t.totalRows()
	src := t.rowSource(match)

	// Per-spec plan, shared read-only by all workers.
	counting := make([]bool, len(specs))
	fvals := make([][]float64, len(specs))
	for si, sp := range specs {
		if sp.Col < 0 {
			g.Accs[si].AddCount(t.countMatches(match))
			continue
		}
		c := &t.cols[sp.Col]
		if c.mainDict.Len() <= globalCountsLimit {
			counting[si] = true
			continue
		}
		mv := c.mainDict.Values()
		f := make([]float64, len(mv))
		for i, v := range mv {
			f[i] = v.Float()
		}
		fvals[si] = f
	}

	type gState struct {
		counts [][]int64 // per counting-mode spec: rows per main code
		accs   []codeAcc // per large-dictionary spec
		codes  []uint32
		rids   []int32
	}
	states := make([]*gState, ex.Workers(nb))
	ex.Morsels(nb, func(w, b int) bool {
		st := states[w]
		if st == nil {
			st = &gState{
				counts: make([][]int64, len(specs)),
				accs:   make([]codeAcc, len(specs)),
				codes:  make([]uint32, blockRows),
				rids:   make([]int32, 0, blockRows),
			}
			for si, sp := range specs {
				st.accs[si].minC = ^uint32(0)
				if sp.Col >= 0 && counting[si] {
					st.counts[si] = make([]int64, t.cols[sp.Col].mainDict.Len())
				}
			}
			states[w] = st
		}
		b0 := b * blockRows
		n := min(blockRows, t.mainRows-b0)
		haveRids := false
		for si := range specs {
			sp := &specs[si]
			if sp.Col < 0 {
				continue
			}
			c := &t.cols[sp.Col]
			fast := dense && c.mainNulls == nil
			if !fast && !haveRids {
				st.rids = src.AppendSet(st.rids[:0], b0, b0+n)
				haveRids = true
			}
			if !fast && len(st.rids) == 0 {
				continue
			}
			c.mainCodes.UnpackBlock(b0, st.codes[:n])
			codes := st.codes[:n]
			if counting[si] {
				cnts := st.counts[si]
				switch {
				case fast:
					for _, code := range codes {
						cnts[code]++
					}
				case c.mainNulls == nil:
					for _, rid := range st.rids {
						cnts[codes[int(rid)-b0]]++
					}
				default:
					for _, rid := range st.rids {
						if !c.mainNulls[rid] {
							cnts[codes[int(rid)-b0]]++
						}
					}
				}
				continue
			}
			a := &st.accs[si]
			f := fvals[si]
			add := func(code uint32) {
				a.sum += f[code]
				a.cnt++
				if code < a.minC {
					a.minC = code
				}
				if code > a.maxC {
					a.maxC = code
				}
			}
			switch {
			case fast:
				for _, code := range codes {
					add(code)
				}
			case c.mainNulls == nil:
				for _, rid := range st.rids {
					add(codes[int(rid)-b0])
				}
			default:
				for _, rid := range st.rids {
					if !c.mainNulls[rid] {
						add(codes[int(rid)-b0])
					}
				}
			}
		}
		return true
	})
	if ex.Stopped() {
		return
	}
	for si, sp := range specs {
		if sp.Col < 0 {
			continue
		}
		c := &t.cols[sp.Col]
		if counting[si] {
			var total []int64
			for _, st := range states {
				if st == nil || st.counts[si] == nil {
					continue
				}
				if total == nil {
					total = st.counts[si]
					continue
				}
				for code, cnt := range st.counts[si] {
					total[code] += cnt
				}
			}
			for code, cnt := range total {
				if cnt > 0 {
					g.Accs[si].AddWeighted(c.mainDict.Value(uint32(code)), cnt)
				}
			}
		} else {
			var m codeAcc
			m.minC = ^uint32(0)
			for _, st := range states {
				if st == nil || st.accs[si].cnt == 0 {
					continue
				}
				b := &st.accs[si]
				m.sum += b.sum
				m.cnt += b.cnt
				if b.minC < m.minC {
					m.minC = b.minC
				}
				if b.maxC > m.maxC {
					m.maxC = b.maxC
				}
			}
			if m.cnt > 0 {
				g.Accs[si].AddSummary(m.sum, m.cnt, c.mainDict.Value(m.minC), c.mainDict.Value(m.maxC))
			}
		}
		t.aggregateGlobalDelta(&g.Accs[si], c, match, dense)
	}
}

// ScanBatchesExec is ScanBatches driven by the execution context: batches
// are claimed one scan block per morsel and decoded into per-worker
// buffers. fn additionally receives the worker id (for per-worker
// downstream state) and the batch's block index (block order is the
// serial batch order, so callers can reassemble deterministic output);
// it must be safe for concurrent calls with distinct worker ids.
func (t *Table) ScanBatchesExec(pred expr.Predicate, cols []int, ex *exec.Ctx, fn func(w, block int, rids []int32, colVals [][]value.Value) bool) {
	if cols == nil {
		cols = t.allColumns()
	}
	s := t.acquireScratch()
	defer t.releaseScratch(s)
	match := t.matchBitmapExec(pred, s, ex)
	if t.totalRows() == 0 {
		return
	}
	type sbState struct {
		s     *scanScratch
		views [][]value.Value
	}
	states := make([]*sbState, ex.Workers(t.NumBlocks()))
	defer func() {
		for _, st := range states {
			if st != nil && st.s != s {
				t.releaseScratch(st.s)
			}
		}
	}()
	t.forBatchesExec(match, ex, func(w int, rids []int32, b0, nm, mainN int) bool {
		st := states[w]
		if st == nil {
			sc := s // worker 0 reuses the matcher's scratch buffers
			if w != 0 {
				sc = t.acquireScratch()
			}
			st = &sbState{s: sc, views: make([][]value.Value, len(cols))}
			states[w] = st
		}
		bufs := st.s.colBufs(len(cols))
		codes := st.s.codeBuf()
		for j, cidx := range cols {
			st.views[j] = bufs[j][:len(rids)]
			t.gatherColumn(&t.cols[cidx], rids, b0, nm, mainN, codes, st.views[j])
		}
		return fn(w, b0/blockRows, rids, st.views)
	})
}
