// Package colstore implements the column-oriented store of the hybrid
// engine. Each column is dictionary-encoded in two fragments, following the
// read-optimized/write-optimized split of in-memory column stores such as
// the SAP HANA column engine the paper targets:
//
//   - the main fragment has a sorted dictionary and a fixed-width
//     bit-packed code vector. Sorted dictionaries give order-preserving
//     code comparisons, so range predicates become integer range checks —
//     the "implicit index" the paper's cost model assumes for the column
//     store's f_selectivity;
//   - the delta fragment has an unsorted, append-friendly dictionary and a
//     plain code slice, absorbing inserts in O(1) per value.
//
// When the delta grows past a threshold it is merged into the main
// fragment, an O(n) re-encode whose amortized cost grows with table size —
// reproducing the insert-cost asymmetry between the stores that the
// paper's BaseInsertCosts·f_#rows captures. Updates reconstruct the
// affected tuple (the paper's f_#affectedColumns tuple-reconstruction
// effort) unless the new values can be patched into the row's fragment
// dictionaries in place.
package colstore

import (
	"fmt"
	"sync"

	"hybridstore/internal/bitset"
	"hybridstore/internal/compress"
	"hybridstore/internal/expr"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// DefaultMergeThreshold is the delta-to-total row fraction that triggers an
// automatic merge on insert.
const DefaultMergeThreshold = 0.10

// minMergeRows avoids merging tiny tables on every insert.
const minMergeRows = 4096

// column holds one attribute's two fragments.
type column struct {
	typ value.Type

	mainDict  *compress.Dict
	mainCodes compress.CodeVector
	mainNulls []bool     // nil when no NULLs present in main
	mainZones []codeZone // per-blockRows code min/max summaries

	deltaDict  *compress.UDict
	deltaCodes []uint32
	deltaNulls []bool // nil when no NULLs present in delta
}

// value at global row id rid (main rows first, then delta rows).
func (c *column) valueAt(rid, mainRows int) value.Value {
	if rid < mainRows {
		if c.mainNulls != nil && c.mainNulls[rid] {
			return value.Null(c.typ)
		}
		return c.mainDict.Value(c.mainCodes.Get(rid))
	}
	d := rid - mainRows
	if c.deltaNulls != nil && c.deltaNulls[d] {
		return value.Null(c.typ)
	}
	return c.deltaDict.Value(c.deltaCodes[d])
}

func (c *column) appendDelta(v value.Value) {
	if v.IsNull() {
		if c.deltaNulls == nil {
			c.deltaNulls = make([]bool, len(c.deltaCodes))
		}
		c.deltaCodes = append(c.deltaCodes, 0)
		c.deltaNulls = append(c.deltaNulls, true)
		return
	}
	code := c.deltaDict.GetOrAdd(v)
	c.deltaCodes = append(c.deltaCodes, code)
	if c.deltaNulls != nil {
		c.deltaNulls = append(c.deltaNulls, false)
	}
}

func (c *column) isNullAt(rid, mainRows int) bool {
	if rid < mainRows {
		return c.mainNulls != nil && c.mainNulls[rid]
	}
	d := rid - mainRows
	return c.deltaNulls != nil && c.deltaNulls[d]
}

// Table is a column-store table. Like the row store it is not safe for
// concurrent mutation.
type Table struct {
	sch  *schema.Table
	cols []column

	mainRows  int
	deltaRows int
	liveSet   bitset.Bits // one bit per row slot; 0 = tombstoned
	live      int

	pkIndex map[uint64][]int32

	// MergeThreshold is the delta fraction that triggers a merge; set
	// AutoMerge to false to manage merges manually (used by ablations).
	MergeThreshold float64
	AutoMerge      bool
	merges         int

	// Pooled scan scratches: the engine allows concurrent readers (and
	// re-entrant scans from batch callbacks), so every scan-shaped
	// operation checks a private scratch out of this free list instead
	// of sharing per-table buffers.
	scratchMu   sync.Mutex
	scratchPool []*scanScratch
}

// New creates an empty column-store table for the schema.
func New(sch *schema.Table) *Table {
	t := &Table{
		sch:            sch,
		cols:           make([]column, sch.NumColumns()),
		MergeThreshold: DefaultMergeThreshold,
		AutoMerge:      true,
	}
	for i := range t.cols {
		t.cols[i] = column{
			typ:       sch.Columns[i].Type,
			mainDict:  compress.NewDict(nil),
			mainCodes: compress.Pack(nil, 0),
			deltaDict: compress.NewUDict(),
		}
	}
	if len(sch.PrimaryKey) > 0 {
		t.pkIndex = make(map[uint64][]int32)
	}
	return t
}

// Schema returns the table schema.
func (t *Table) Schema() *schema.Table { return t.sch }

// Rows returns the number of live rows.
func (t *Table) Rows() int { return t.live }

// totalRows returns live+tombstoned row slots.
func (t *Table) totalRows() int { return t.mainRows + t.deltaRows }

// DeltaRows returns the current size of the write-optimized delta fragment.
func (t *Table) DeltaRows() int { return t.deltaRows }

// Merges returns how many delta merges have run (exposed for tests and the
// delta ablation bench).
func (t *Table) Merges() int { return t.merges }

// Get reconstructs the full tuple at global row id rid. This is the tuple
// reconstruction the paper charges column-store point queries for
// (f_#selectedColumns).
func (t *Table) Get(rid int) []value.Value {
	row := make([]value.Value, len(t.cols))
	for i := range t.cols {
		row[i] = t.cols[i].valueAt(rid, t.mainRows)
	}
	return row
}

// materialize fills dst's entries for the requested columns only.
func (t *Table) materialize(rid int, cols []int, dst []value.Value) {
	for _, c := range cols {
		dst[c] = t.cols[c].valueAt(rid, t.mainRows)
	}
}

// Valid reports whether row slot rid is live.
func (t *Table) Valid(rid int) bool { return t.liveSet.Get(rid) }

func (t *Table) pkHash(row []value.Value) uint64 {
	return value.HashRow(t.sch.PKValues(row))
}

func (t *Table) pkEqualAt(rid int, key []value.Value) bool {
	for i, k := range t.sch.PrimaryKey {
		if !value.Equal(t.cols[k].valueAt(rid, t.mainRows), key[i]) {
			return false
		}
	}
	return true
}

// LookupPK returns the global row id holding the given primary key.
func (t *Table) LookupPK(key []value.Value) (int, bool) {
	if t.pkIndex == nil || len(key) != len(t.sch.PrimaryKey) {
		return 0, false
	}
	for _, rid := range t.pkIndex[value.HashRow(key)] {
		if t.liveSet.Get(int(rid)) && t.pkEqualAt(int(rid), key) {
			return int(rid), true
		}
	}
	return 0, false
}

// Insert appends rows to the delta fragment, checking schema validity and
// primary-key uniqueness, and triggers a merge when the delta outgrows the
// threshold. The whole batch is validated (including duplicates within
// the batch) before anything is appended, so a failing INSERT is atomic.
func (t *Table) Insert(rows [][]value.Value) error {
	var batchKeys map[string]struct{}
	for _, row := range rows {
		if err := t.sch.ValidateRow(row); err != nil {
			return err
		}
		if t.pkIndex != nil {
			key := t.sch.PKValues(row)
			if _, dup := t.LookupPK(key); dup {
				return fmt.Errorf("colstore: duplicate primary key %v in table %q", key, t.sch.Name)
			}
			if batchKeys == nil {
				batchKeys = make(map[string]struct{}, len(rows))
			}
			ks := value.TupleKey(key)
			if _, dup := batchKeys[ks]; dup {
				return fmt.Errorf("colstore: duplicate primary key %v within insert batch in table %q", key, t.sch.Name)
			}
			batchKeys[ks] = struct{}{}
		}
	}
	for _, row := range rows {
		t.appendRow(row)
	}
	if t.AutoMerge && t.totalRows() > minMergeRows &&
		float64(t.deltaRows) > t.MergeThreshold*float64(t.totalRows()) {
		t.Merge()
	}
	return nil
}

// appendRow appends a validated, uniqueness-checked row to the delta.
func (t *Table) appendRow(row []value.Value) {
	rid := int32(t.totalRows())
	for i := range t.cols {
		t.cols[i].appendDelta(row[i])
	}
	t.deltaRows++
	t.liveSet = bitset.Grow(t.liveSet, int(rid)+1)
	t.liveSet.Set(int(rid))
	t.live++
	if t.pkIndex != nil {
		h := t.pkHash(row)
		t.pkIndex[h] = append(t.pkIndex[h], rid)
	}
}

// Merge folds the delta fragment into the main fragment, rebuilding each
// column's sorted dictionary and bit-packed code vector over all live rows
// and compacting away tombstones. It is the expensive, amortized part of
// column-store inserts.
func (t *Table) Merge() {
	total := t.totalRows()
	if t.deltaRows == 0 && t.live == total {
		return // nothing to merge or compact
	}
	liveRids := t.liveSet.AppendSet(make([]int32, 0, t.live), 0, total)
	for i := range t.cols {
		t.mergeColumn(&t.cols[i], liveRids)
	}
	t.mainRows = len(liveRids)
	t.deltaRows = 0
	t.liveSet = bitset.New(t.mainRows)
	t.liveSet.FillOnes(t.mainRows)
	t.live = t.mainRows
	if t.pkIndex != nil {
		t.pkIndex = make(map[uint64][]int32)
		key := make([]value.Value, len(t.sch.PrimaryKey))
		for rid := 0; rid < t.mainRows; rid++ {
			for i, k := range t.sch.PrimaryKey {
				key[i] = t.cols[k].valueAt(rid, t.mainRows)
			}
			h := value.HashRow(key)
			t.pkIndex[h] = append(t.pkIndex[h], int32(rid))
		}
	}
	t.merges++
}

func (t *Table) mergeColumn(c *column, liveRids []int32) {
	// Collect live values (NULLs tracked separately).
	vals := make([]value.Value, len(liveRids))
	var nulls []bool
	for i, rid := range liveRids {
		v := c.valueAt(int(rid), t.mainRows)
		vals[i] = v
		if v.IsNull() {
			if nulls == nil {
				nulls = make([]bool, len(liveRids))
			}
			nulls[i] = true
		}
	}
	dict := compress.NewDict(vals)
	codes := make([]uint32, len(vals))
	for i, v := range vals {
		if nulls != nil && nulls[i] {
			continue
		}
		code, ok := dict.Code(v)
		if !ok {
			panic("colstore: merged dictionary missing value")
		}
		codes[i] = code
	}
	c.mainDict = dict
	// Encode picks the smallest coding per column — bit-packed, run-length
	// or frame-of-reference — at merge time, when the value distribution
	// is known. Non-bit-packed vectors are immutable; updateRow routes
	// their in-place updates through the migrate path instead.
	c.mainCodes = compress.Encode(codes, dict.Len())
	c.mainNulls = nulls
	c.mainZones = buildZones(codes, nulls)
	c.deltaDict = compress.NewUDict()
	c.deltaCodes = nil
	c.deltaNulls = nil
}

// FragmentRows streams every live row in row-id order, reporting for
// each whether it lives in the read-optimized main fragment or the
// write-optimized delta. Snapshotting uses it to serialize the table
// fragment-by-fragment so a reload preserves the main/delta split. The
// row slice is freshly allocated per call and may be retained.
func (t *Table) FragmentRows(fn func(row []value.Value, inMain bool) bool) {
	for rid := 0; rid < t.totalRows(); rid++ {
		if !t.liveSet.Get(rid) {
			continue
		}
		if !fn(t.Get(rid), rid < t.mainRows) {
			return
		}
	}
}

// Load builds a table from snapshot fragments: main rows are bulk-loaded
// and merged into a sorted-dictionary main fragment, delta rows are
// appended unmerged — so a snapshot-restored table has the same
// main/delta split (and therefore the same merge debt) as the table the
// snapshot captured.
func Load(sch *schema.Table, main, delta [][]value.Value) (*Table, error) {
	t := New(sch)
	t.AutoMerge = false
	if err := t.Insert(main); err != nil {
		return nil, fmt.Errorf("colstore: load main fragment: %w", err)
	}
	t.Merge()
	if len(main) > 0 {
		t.merges = 0 // the load-time merge is not workload merge activity
	}
	if err := t.Insert(delta); err != nil {
		return nil, fmt.Errorf("colstore: load delta fragment: %w", err)
	}
	t.AutoMerge = true
	return t, nil
}

// DistinctCount returns the (approximate) number of distinct values in
// column col: exact after a merge, an upper bound while delta values
// overlap the main dictionary. The raw dictionary sum can exceed the
// live row count (overlapping delta values, deleted rows keep their
// dictionary entries), so it is clamped to [1, Rows()] on non-empty
// tables — planner cardinality divides by NDV, and an NDV above the row
// count would collapse equality/group estimates toward zero and
// mis-price join build sides.
func (t *Table) DistinctCount(col int) int {
	d := t.cols[col].mainDict.Len() + t.cols[col].deltaDict.Len()
	if live := t.Rows(); d > live {
		d = live
	}
	if d < 1 && t.live > 0 {
		d = 1
	}
	return d
}

// CompressionRate returns the achieved dictionary-compression rate of
// column col (1 - compressed/uncompressed; see compress.Rate).
func (t *Table) CompressionRate(col int) float64 {
	c := &t.cols[col]
	uncompressed, compressed := 0, 0
	elem := func(v value.Value) int { return v.Bytes() }
	// Main fragment.
	for _, v := range c.mainDict.Values() {
		compressed += elem(v)
	}
	compressed += c.mainCodes.SizeBytes()
	// Delta fragment: 4-byte codes.
	for _, v := range c.deltaDict.Values() {
		compressed += elem(v)
	}
	compressed += 4 * len(c.deltaCodes)
	n := 0
	for rid := 0; rid < t.totalRows(); rid++ {
		if !t.liveSet.Get(rid) {
			continue
		}
		uncompressed += elem(c.valueAt(rid, t.mainRows))
		n++
	}
	if n == 0 {
		return 0
	}
	return compress.Rate(uncompressed, compressed)
}

// MemoryBytes estimates the compressed payload size of the table.
func (t *Table) MemoryBytes() int {
	total := 0
	for i := range t.cols {
		c := &t.cols[i]
		for _, v := range c.mainDict.Values() {
			total += v.Bytes()
		}
		total += c.mainCodes.SizeBytes()
		for _, v := range c.deltaDict.Values() {
			total += v.Bytes()
		}
		total += 4 * len(c.deltaCodes)
	}
	return total
}

// MinMax returns the smallest and largest non-NULL value of column col.
func (t *Table) MinMax(col int) (lo, hi value.Value, ok bool) {
	c := &t.cols[col]
	if c.mainDict.Len() > 0 {
		lo, hi = c.mainDict.Value(0), c.mainDict.Value(uint32(c.mainDict.Len()-1))
		ok = true
	}
	for _, v := range c.deltaDict.Values() {
		if !ok {
			lo, hi, ok = v, v, true
			continue
		}
		if value.Less(v, lo) {
			lo = v
		}
		if value.Less(hi, v) {
			hi = v
		}
	}
	return lo, hi, ok
}

// Update applies set to all live rows matching pred, returning the number
// of rows changed. Rows in the delta fragment (or whose new values already
// exist in the main dictionary) are patched in place; other main-fragment
// rows are migrated: the full tuple is reconstructed, tombstoned and
// re-appended to the delta — the column store's expensive update path.
func (t *Table) Update(pred expr.Predicate, set map[int]value.Value) (int, error) {
	for col, v := range set {
		if col < 0 || col >= len(t.cols) {
			return 0, fmt.Errorf("colstore: update column %d out of range in %q", col, t.sch.Name)
		}
		c := t.sch.Columns[col]
		if v.IsNull() && !c.Nullable {
			return 0, fmt.Errorf("colstore: column %q is NOT NULL", c.Name)
		}
		if !v.IsNull() && v.Type() != c.Type {
			return 0, fmt.Errorf("colstore: column %q expects %s, got %s", c.Name, c.Type, v.Type())
		}
	}
	rids := t.matchingRows(pred)
	pkChanged := false
	for _, k := range t.sch.PrimaryKey {
		if _, ok := set[k]; ok {
			pkChanged = true
		}
	}
	// Validate PK-changing updates before mutating: a new key colliding
	// with another live row — or with another new key of the same
	// statement — would corrupt pkIndex and break LookupPK, so the
	// statement fails atomically instead.
	if pkChanged && t.pkIndex != nil {
		newKeys := make(map[string]struct{}, len(rids))
		for _, rid := range rids {
			key := make([]value.Value, len(t.sch.PrimaryKey))
			for i, k := range t.sch.PrimaryKey {
				if v, ok := set[k]; ok {
					key[i] = v
				} else {
					key[i] = t.cols[k].valueAt(int(rid), t.mainRows)
				}
			}
			ks := value.TupleKey(key)
			if _, dup := newKeys[ks]; dup {
				return 0, fmt.Errorf("colstore: update would assign duplicate primary key %v to multiple rows in %q", key, t.sch.Name)
			}
			newKeys[ks] = struct{}{}
			if orid, ok := t.LookupPK(key); ok && int32(orid) != rid {
				return 0, fmt.Errorf("colstore: update would duplicate primary key %v in table %q", key, t.sch.Name)
			}
		}
	}
	for _, rid := range rids {
		t.updateRow(int(rid), set, pkChanged)
	}
	return len(rids), nil
}

func (t *Table) updateRow(rid int, set map[int]value.Value, pkChanged bool) {
	inPlace := true
	if rid < t.mainRows {
		for col, v := range set {
			if _, mutable := t.cols[col].mainCodes.(compress.Mutable); !mutable {
				// RLE/FoR-coded vector: no in-place overwrite; migrate.
				inPlace = false
				break
			}
			if v.IsNull() {
				// Setting NULL in main needs a null bitmap we may not have
				// sized; migrate for simplicity.
				inPlace = false
				break
			}
			if _, ok := t.cols[col].mainDict.Code(v); !ok {
				inPlace = false
				break
			}
			if t.cols[col].isNullAt(rid, t.mainRows) {
				inPlace = false // clearing a NULL flag requires a rewrite
				break
			}
		}
	}
	var oldKeyHash uint64
	if pkChanged && t.pkIndex != nil {
		key := make([]value.Value, len(t.sch.PrimaryKey))
		for i, k := range t.sch.PrimaryKey {
			key[i] = t.cols[k].valueAt(rid, t.mainRows)
		}
		oldKeyHash = value.HashRow(key)
	}
	if inPlace {
		for col, v := range set {
			c := &t.cols[col]
			if rid < t.mainRows {
				code, _ := c.mainDict.Code(v)
				c.mainCodes.(compress.Mutable).Set(rid, code)
				patchZone(c.mainZones, rid, code)
			} else {
				d := rid - t.mainRows
				if v.IsNull() {
					if c.deltaNulls == nil {
						c.deltaNulls = make([]bool, len(c.deltaCodes))
					}
					c.deltaNulls[d] = true
				} else {
					c.deltaCodes[d] = c.deltaDict.GetOrAdd(v)
					if c.deltaNulls != nil {
						c.deltaNulls[d] = false
					}
				}
			}
		}
	} else {
		// Migrate: reconstruct, tombstone, re-append with new values.
		row := t.Get(rid)
		for col, v := range set {
			row[col] = v
		}
		t.liveSet.Clear(rid)
		t.live--
		newRid := int32(t.totalRows())
		for i := range t.cols {
			t.cols[i].appendDelta(row[i])
		}
		t.deltaRows++
		t.liveSet = bitset.Grow(t.liveSet, int(newRid)+1)
		t.liveSet.Set(int(newRid))
		t.live++
		if t.pkIndex != nil {
			h := t.pkHash(row)
			// Remove the tombstoned rid lazily: LookupPK skips invalid rows,
			// but we remove eagerly to keep chains short.
			removeRid(t.pkIndex, oldHashOr(t, row, pkChanged, oldKeyHash), int32(rid))
			t.pkIndex[h] = append(t.pkIndex[h], newRid)
		}
		return
	}
	if pkChanged && t.pkIndex != nil {
		key := make([]value.Value, len(t.sch.PrimaryKey))
		for i, k := range t.sch.PrimaryKey {
			key[i] = t.cols[k].valueAt(rid, t.mainRows)
		}
		removeRid(t.pkIndex, oldKeyHash, int32(rid))
		h := value.HashRow(key)
		t.pkIndex[h] = append(t.pkIndex[h], int32(rid))
	}
}

// oldHashOr returns the PK hash of the pre-update row: when the PK did not
// change it equals the post-update hash.
func oldHashOr(t *Table, newRow []value.Value, pkChanged bool, oldHash uint64) uint64 {
	if pkChanged {
		return oldHash
	}
	return t.pkHash(newRow)
}

// Delete tombstones all live rows matching pred. Space is reclaimed at the
// next merge.
func (t *Table) Delete(pred expr.Predicate) int {
	rids := t.matchingRows(pred)
	key := make([]value.Value, len(t.sch.PrimaryKey))
	for _, rid := range rids {
		if t.pkIndex != nil {
			for i, k := range t.sch.PrimaryKey {
				key[i] = t.cols[k].valueAt(int(rid), t.mainRows)
			}
			removeRid(t.pkIndex, value.HashRow(key), rid)
		}
		t.liveSet.Clear(int(rid))
		t.live--
	}
	return len(rids)
}

func removeRid(idx map[uint64][]int32, h uint64, rid int32) {
	lst := idx[h]
	for i, r := range lst {
		if r == rid {
			lst[i] = lst[len(lst)-1]
			idx[h] = lst[:len(lst)-1]
			return
		}
	}
}
