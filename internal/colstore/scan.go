package colstore

import (
	"sort"

	"hybridstore/internal/bitset"
	"hybridstore/internal/compress"
	"hybridstore/internal/expr"
	"hybridstore/internal/trace"
	"hybridstore/internal/value"
)

// colMatcher is a compiled per-column predicate test operating directly on
// dictionary codes: an order-preserving code range for the sorted main
// dictionary and a per-code boolean table for the unsorted delta
// dictionary. This is the column store's "implicit index" — predicates are
// answered without decoding values.
type colMatcher struct {
	col            int
	mainLo, mainHi uint32 // half-open code interval in the main dictionary
	deltaMatch     []bool // indexed by delta code
}

// compileMatchers turns a conjunction of column-vs-constant comparisons
// into code-level matchers. ok is false when the predicate shape is not
// supported (the caller falls back to row materialization).
func (t *Table) compileMatchers(pred expr.Predicate) ([]colMatcher, bool) {
	if pred == nil {
		return nil, true
	}
	if _, isTrue := pred.(expr.True); isTrue {
		return nil, true
	}
	conj := expr.Conjuncts(pred)
	// An *And containing unsupported children must fall back entirely.
	matchers := make([]colMatcher, 0, len(conj))
	for _, c := range conj {
		switch q := c.(type) {
		case *expr.Comparison:
			if q.Op == expr.Ne || q.Val.IsNull() {
				return nil, false
			}
			m, ok := t.compileComparison(q)
			if !ok {
				return nil, false
			}
			matchers = append(matchers, m)
		case *expr.Between:
			if q.Lo.IsNull() || q.Hi.IsNull() {
				return nil, false
			}
			m, ok := t.compileBetween(q)
			if !ok {
				return nil, false
			}
			matchers = append(matchers, m)
		default:
			return nil, false
		}
	}
	return matchers, true
}

func (t *Table) compileComparison(q *expr.Comparison) (colMatcher, bool) {
	if q.Col < 0 || q.Col >= len(t.cols) {
		return colMatcher{}, false
	}
	c := &t.cols[q.Col]
	var op compress.CodeRangeOp
	switch q.Op {
	case expr.Eq:
		op = compress.RangeEq
	case expr.Lt:
		op = compress.RangeLt
	case expr.Le:
		op = compress.RangeLe
	case expr.Gt:
		op = compress.RangeGt
	case expr.Ge:
		op = compress.RangeGe
	default:
		return colMatcher{}, false
	}
	lo, hi := c.mainDict.CodeRange(op, q.Val)
	m := colMatcher{col: q.Col, mainLo: lo, mainHi: hi}
	m.deltaMatch = make([]bool, c.deltaDict.Len())
	for code, v := range c.deltaDict.Values() {
		m.deltaMatch[code] = q.Op.Apply(value.Compare(v, q.Val))
	}
	return m, true
}

func (t *Table) compileBetween(q *expr.Between) (colMatcher, bool) {
	if q.Col < 0 || q.Col >= len(t.cols) {
		return colMatcher{}, false
	}
	c := &t.cols[q.Col]
	lo, _ := c.mainDict.CodeRange(compress.RangeGe, q.Lo)
	_, hi := c.mainDict.CodeRange(compress.RangeLe, q.Hi)
	m := colMatcher{col: q.Col, mainLo: lo, mainHi: hi}
	m.deltaMatch = make([]bool, c.deltaDict.Len())
	for code, v := range c.deltaDict.Values() {
		m.deltaMatch[code] = value.Compare(v, q.Lo) >= 0 && value.Compare(v, q.Hi) <= 0
	}
	return m, true
}

// matchBitmap evaluates pred over all row slots, returning a per-slot
// match bitset that already excludes tombstoned rows. A nil return means
// "all live rows match". Compiled matchers are evaluated block-at-a-time
// over bulk-decoded code buffers with zone-map skipping; conjuncts and the
// tombstone mask combine with word-wide ANDs. The returned bitset is
// backed by s and stays valid until s is released.
func (t *Table) matchBitmap(pred expr.Predicate, s *scanScratch) bitset.Bits {
	return t.matchBitmapTraced(pred, s, nil)
}

// matchBitmapTraced is matchBitmap reporting zone-map outcomes to tr
// (and always to the cumulative package metrics).
func (t *Table) matchBitmapTraced(pred expr.Predicate, s *scanScratch, tr *trace.Trace) bitset.Bits {
	if matchers, ok := t.compileMatchers(pred); ok {
		if len(matchers) == 0 {
			return nil
		}
		// Evaluate the most selective conjunct first: later conjuncts skip
		// decode for words that are already zero.
		sort.Slice(matchers, func(i, j int) bool {
			return t.matcherSelectivity(&matchers[i]) < t.matcherSelectivity(&matchers[j])
		})
		match := s.bits(t.totalRows())
		var sc scanCounts
		t.fillMatcher(&matchers[0], match, true, &sc)
		for i := 1; i < len(matchers); i++ {
			t.fillMatcher(&matchers[i], match, false, &sc)
		}
		sc.report(tr)
		if t.live != t.totalRows() {
			match.And(t.liveSet[:len(match)])
		}
		return match
	}
	return t.fallbackBitmap(pred, s)
}

// matcherSelectivity estimates the fraction of main-fragment rows a
// matcher keeps (code-range width over dictionary size) to order
// conjuncts cheapest-result-first.
func (t *Table) matcherSelectivity(m *colMatcher) float64 {
	d := t.cols[m.col].mainDict.Len()
	if d == 0 || m.mainHi <= m.mainLo {
		return 0
	}
	return float64(m.mainHi-m.mainLo) / float64(d)
}

// scanScratch bundles the reusable buffers of one in-flight scan,
// aggregate or join probe: the predicate match bitset, the block decode
// buffer, and the batch column buffers. Scratches are pooled per table
// behind a mutex, so concurrent readers — the engine executes reads
// under a shared lock — and re-entrant scans from batch callbacks each
// work on private buffers.
type scanScratch struct {
	match bitset.Bits
	codes []uint32
	bufs  [][]value.Value
}

// acquireScratch checks a scratch out of the table's pool (allocating a
// fresh one when the pool is empty). Callers must releaseScratch it.
func (t *Table) acquireScratch() *scanScratch {
	t.scratchMu.Lock()
	if n := len(t.scratchPool); n > 0 {
		s := t.scratchPool[n-1]
		t.scratchPool = t.scratchPool[:n-1]
		t.scratchMu.Unlock()
		return s
	}
	t.scratchMu.Unlock()
	return &scanScratch{}
}

func (t *Table) releaseScratch(s *scanScratch) {
	t.scratchMu.Lock()
	if len(t.scratchPool) < 16 {
		t.scratchPool = append(t.scratchPool, s)
	}
	t.scratchMu.Unlock()
}

// bits returns the scratch's match bitset sized to rows slots. Every code
// path that uses it overwrites every word, so no zeroing is needed.
func (s *scanScratch) bits(rows int) bitset.Bits {
	w := bitset.Words(rows)
	if cap(s.match) < w {
		s.match = make(bitset.Bits, w+64)
	}
	return s.match[:w]
}

// codeBuf returns the scratch's block decode buffer.
func (s *scanScratch) codeBuf() []uint32 {
	if s.codes == nil {
		s.codes = make([]uint32, blockRows)
	}
	return s.codes
}

// colBufs returns ncols batch column buffers.
func (s *scanScratch) colBufs(ncols int) [][]value.Value {
	for len(s.bufs) < ncols {
		s.bufs = append(s.bufs, make([]value.Value, blockRows))
	}
	return s.bufs[:ncols]
}

// fillMatcher evaluates one compiled matcher into the match bitset. The
// main fragment is processed in blockRows-sized blocks: the block's zone
// map first decides whether it can match at all (skip: zero words) or must
// match entirely (accept: all-ones words, no decode); only ambiguous
// blocks are bulk-decoded and tested, accumulating 64 rows per bitset
// word. With first=true the bitset is initialized, otherwise each block's
// words are ANDed in — and blocks whose words are already zero are skipped
// before any decode.
func (t *Table) fillMatcher(m *colMatcher, match bitset.Bits, first bool, sc *scanCounts) {
	var blockWords [blockRows / 64]uint64
	for b0 := 0; b0 < t.mainRows; b0 += blockRows {
		sc.count(t.fillMatcherBlock(m, match, b0, first, blockWords[:]))
	}
	t.fillMatcherDelta(m, match, first)
}

// scanCounts accumulates per-scan zone-map outcomes locally — one plain
// add per 1024-row block — and is folded into the cumulative package
// metrics (and the statement trace, when one is attached) exactly once
// per scan, so the hot path never touches an atomic or a mutex.
type scanCounts struct {
	decoded, skipped, wholesale int64
}

func (sc *scanCounts) count(outcome int) {
	switch outcome {
	case blockZoneSkipped:
		sc.skipped++
	case blockZoneWholesale:
		sc.wholesale++
	default:
		sc.decoded++
	}
}

func (sc *scanCounts) add(o scanCounts) {
	sc.decoded += o.decoded
	sc.skipped += o.skipped
	sc.wholesale += o.wholesale
}

// report folds the finished scan's counts into the cumulative codec
// metrics and, when the statement is traced, its trace counters.
func (sc *scanCounts) report(tr *trace.Trace) {
	total := sc.decoded + sc.skipped + sc.wholesale
	if total == 0 {
		return
	}
	mBlocksDecoded.Add(sc.decoded)
	mBlocksZoneSkipped.Add(sc.skipped)
	mBlocksZoneWholesale.Add(sc.wholesale)
	if tr != nil {
		tr.Add("blocks_decoded", sc.decoded)
		tr.Add("blocks_zone_skipped", sc.skipped)
		tr.Add("blocks_zone_wholesale", sc.wholesale)
	}
}

// Zone-map outcomes of one fillMatcherBlock call, reported per block so
// traces and metrics can show how much decode the zone maps avoided.
const (
	blockZoneSkipped   = iota // zone map excluded the block: zero words, no decode
	blockZoneWholesale        // zone map accepted the block wholesale: word fills, no decode
	blockDecoded              // ambiguous: fused decode+test kernels ran
)

// fillMatcherBlock evaluates one matcher over the single main-fragment
// block starting at b0, returning the zone-map outcome. Blocks are
// bitset-word aligned (blockRows is a multiple of 64), so distinct
// blocks write disjoint words — the morsel parallel scan runs this
// concurrently, one block per morsel, as long as every matcher is
// applied to a block before moving on and the delta passes run
// afterwards. blockWords is a per-caller (n+63)/64-word staging buffer
// for nullable columns.
func (t *Table) fillMatcherBlock(m *colMatcher, match bitset.Bits, b0 int, first bool, blockWords []uint64) int {
	c := &t.cols[m.col]
	lo, hi := m.mainLo, m.mainHi
	if hi < lo {
		hi = lo // empty code range (e.g. inverted BETWEEN bounds)
	}
	mainRows := t.mainRows
	{
		n := min(blockRows, mainRows-b0)
		w0 := b0 >> 6
		z := c.mainZones[b0/blockRows]
		if hi == lo || !z.overlaps(lo, hi) {
			// No code in the block can match: the block's bits become 0.
			// The final word may be shared with the first delta rows; when
			// ANDing, those bits were already written and must survive
			// (with first=true they are rewritten afterwards).
			for w, end := w0, (b0+n)>>6; w < end; w++ {
				match[w] = 0
			}
			if rem := uint(n) & 63; rem != 0 {
				if first {
					match[(b0+n)>>6] = 0
				} else {
					match[(b0+n)>>6] &= ^uint64(0) << rem
				}
			}
			return blockZoneSkipped
		}
		if !z.hasNull && z.within(lo, hi) {
			// Every row in the block matches: ANDing is a no-op,
			// initializing is a word fill.
			if first {
				full := n >> 6
				for w := 0; w < full; w++ {
					match[w0+w] = ^uint64(0)
				}
				if rem := uint(n) & 63; rem != 0 {
					match[w0+full] = 1<<rem - 1
				}
			}
			return blockZoneWholesale
		}
		// Ambiguous block: fused decode+test kernels write bitset words
		// straight into the match bitmap. The AND kernel skips decode for
		// words an earlier conjunct already zeroed and preserves the final
		// word's delta bits above the block.
		if nulls := c.mainNulls; nulls == nil {
			if first {
				c.mainCodes.RangeMatchWords(b0, n, lo, hi, match[w0:])
			} else {
				c.mainCodes.RangeMatchWordsAnd(b0, n, lo, hi, match[w0:])
			}
			return blockDecoded
		}
		// Nullable column: mask NULL rows out of a block buffer first.
		bw := blockWords[:(n+63)>>6]
		c.mainCodes.RangeMatchWords(b0, n, lo, hi, bw)
		nulls := c.mainNulls
		for i := 0; i < n; i++ {
			if nulls[b0+i] {
				bw[i>>6] &^= 1 << (uint(i) & 63)
			}
		}
		full := n >> 6
		if first {
			for w := 0; w < full; w++ {
				match[w0+w] = bw[w]
			}
			if uint(n)&63 != 0 {
				match[w0+full] = bw[full]
			}
		} else {
			for w := 0; w < full; w++ {
				match[w0+w] &= bw[w]
			}
			if rem := uint(n) & 63; rem != 0 {
				// Preserve the shared word's delta bits above the block.
				match[w0+full] &= bw[full] | ^uint64(0)<<rem
			}
		}
	}
	return blockDecoded
}

// fillMatcherDelta evaluates one matcher over the delta fragment (small,
// append-only): per-row over the plain code slice and the matcher's
// per-code table. It must run after every main-fragment block pass — the
// word shared between the last main block and the first delta rows holds
// only main bits until then.
func (t *Table) fillMatcherDelta(m *colMatcher, match bitset.Bits, first bool) {
	c := &t.cols[m.col]
	mainRows := t.mainRows
	if first {
		for w := (mainRows + 63) >> 6; w < len(match); w++ {
			match[w] = 0
		}
		for d, code := range c.deltaCodes {
			if m.deltaMatch[code] && (c.deltaNulls == nil || !c.deltaNulls[d]) {
				match.Set(mainRows + d)
			}
		}
		return
	}
	for d, code := range c.deltaCodes {
		rid := mainRows + d
		if !match.Get(rid) {
			continue
		}
		if !m.deltaMatch[code] || (c.deltaNulls != nil && c.deltaNulls[d]) {
			match.Clear(rid)
		}
	}
}

// fallbackBitmap evaluates an arbitrary predicate by materializing the
// referenced columns. Each needed column's main-fragment codes are
// bulk-decoded once per block, then the predicate runs per live row over
// the assembled scratch row.
func (t *Table) fallbackBitmap(pred expr.Predicate, s *scanScratch) bitset.Bits {
	cols := expr.ColumnSet(pred)
	match := s.bits(t.totalRows())
	match.Zero()
	scratch := make([]value.Value, len(t.cols))
	blockCodes := make([][]uint32, len(cols))
	for j := range blockCodes {
		blockCodes[j] = make([]uint32, blockRows)
	}
	total := t.totalRows()
	mainRows := t.mainRows
	live := t.liveSet
	for b0 := 0; b0 < total; b0 += blockRows {
		n := min(blockRows, total-b0)
		if !live.AnyRange(b0, b0+n) {
			continue
		}
		mainN := 0
		if b0 < mainRows {
			mainN = min(n, mainRows-b0)
		}
		for j, cidx := range cols {
			if mainN > 0 {
				t.cols[cidx].mainCodes.UnpackBlock(b0, blockCodes[j][:mainN])
			}
		}
		for i := 0; i < n; i++ {
			rid := b0 + i
			if !live.Get(rid) {
				continue
			}
			for j, cidx := range cols {
				c := &t.cols[cidx]
				if i < mainN {
					if c.mainNulls != nil && c.mainNulls[rid] {
						scratch[cidx] = value.Null(c.typ)
					} else {
						scratch[cidx] = c.mainDict.Value(blockCodes[j][i])
					}
				} else {
					d := rid - mainRows
					if c.deltaNulls != nil && c.deltaNulls[d] {
						scratch[cidx] = value.Null(c.typ)
					} else {
						scratch[cidx] = c.deltaDict.Value(c.deltaCodes[d])
					}
				}
			}
			if pred.Matches(scratch) {
				match.Set(rid)
			}
		}
	}
	return match
}

// allColumns returns [0, len(t.cols)).
func (t *Table) allColumns() []int {
	cols := make([]int, len(t.cols))
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// ScanBatches is the vectorized scan: matching live rows are streamed to
// fn in batches of up to blockRows, with the requested columns decoded
// column-at-a-time into reused column buffers. rids holds the batch's
// global row ids in ascending order; colVals[j][k] is the value of column
// cols[j] at row rids[k]. Both slices are reused between batches — fn must
// not retain them. Returning false stops the scan. nil cols requests every
// column.
func (t *Table) ScanBatches(pred expr.Predicate, cols []int, fn func(rids []int32, colVals [][]value.Value) bool) {
	if cols == nil {
		cols = t.allColumns()
	}
	s := t.acquireScratch()
	defer t.releaseScratch(s)
	t.scanBatches(t.matchBitmap(pred, s), cols, s, fn)
}

// scanBatches streams batches for an already-computed match bitset
// (nil = all live rows) using the scratch that backs it.
func (t *Table) scanBatches(match bitset.Bits, cols []int, s *scanScratch, fn func(rids []int32, colVals [][]value.Value) bool) {
	total := t.totalRows()
	if total == 0 {
		return
	}
	bufs := s.colBufs(len(cols))
	views := make([][]value.Value, len(cols))
	codes := s.codeBuf()
	t.forBatches(match, func(rids []int32, b0, nm, mainN int) bool {
		for j, cidx := range cols {
			views[j] = bufs[j][:len(rids)]
			t.gatherColumn(&t.cols[cidx], rids, b0, nm, mainN, codes, views[j])
		}
		return fn(rids, views)
	})
}

// splitBatch returns the number nm of main-resident rids (ascending order
// puts them first) and the row count mainN of the block's main-fragment
// span starting at b0.
func (t *Table) splitBatch(rids []int32, b0, n int) (nm, mainN int) {
	mainRows := t.mainRows
	nm = len(rids)
	if b0+n > mainRows {
		nm = 0
		for nm < len(rids) && int(rids[nm]) < mainRows {
			nm++
		}
	}
	if nm > 0 {
		mainN = min(n, mainRows-b0)
	}
	return nm, mainN
}

// gatherColumn fills dst[k] with column c's value at rids[k]. All rids lie
// in the block [b0, b0+mainN+...) and are ascending; nm and mainN come
// from splitBatch. When the batch covers enough of the block's
// main-fragment span, the span's codes are bulk-decoded once and gathered
// by offset; sparse batches extract codes individually.
func (t *Table) gatherColumn(c *column, rids []int32, b0, nm, mainN int, codes []uint32, dst []value.Value) {
	mainRows := t.mainRows
	if nm > 0 {
		blockN := mainN
		if nm*4 >= blockN {
			c.mainCodes.UnpackBlock(b0, codes[:blockN])
			if c.mainNulls == nil {
				for k := 0; k < nm; k++ {
					dst[k] = c.mainDict.Value(codes[int(rids[k])-b0])
				}
			} else {
				for k := 0; k < nm; k++ {
					rid := int(rids[k])
					if c.mainNulls[rid] {
						dst[k] = value.Null(c.typ)
					} else {
						dst[k] = c.mainDict.Value(codes[rid-b0])
					}
				}
			}
		} else {
			for k := 0; k < nm; k++ {
				rid := int(rids[k])
				if c.mainNulls != nil && c.mainNulls[rid] {
					dst[k] = value.Null(c.typ)
				} else {
					dst[k] = c.mainDict.Value(c.mainCodes.Get(rid))
				}
			}
		}
	}
	for k := nm; k < len(rids); k++ {
		d := int(rids[k]) - mainRows
		if c.deltaNulls != nil && c.deltaNulls[d] {
			dst[k] = value.Null(c.typ)
		} else {
			dst[k] = c.deltaDict.Value(c.deltaCodes[d])
		}
	}
}

// Scan calls fn for each live row matching pred with the requested columns
// materialized into a reused scratch row (full table width; unrequested
// entries are stale). fn must not retain the slice. A nil cols materializes
// every column. It is a thin row-at-a-time adapter over ScanBatches, kept
// for callers that want tuple streaming.
//
// Unlike the row store, point predicates get no index shortcut: the
// column store locates rows by evaluating the predicate over the code
// vectors (a sequential scan, fast per row but O(n)). This mirrors real
// column engines, where point access requires a dictionary probe plus a
// position scan, and is the OLTP disadvantage the paper's cost model
// charges the column store for. (The internal PK hash index accelerates
// only insert uniqueness checks, standing in for the dictionary-based
// duplicate test.)
func (t *Table) Scan(pred expr.Predicate, cols []int, fn func(rid int, row []value.Value) bool) {
	if cols == nil {
		cols = t.allColumns()
	}
	scratch := make([]value.Value, len(t.cols))
	t.ScanBatches(pred, cols, func(rids []int32, colVals [][]value.Value) bool {
		for k, rid := range rids {
			for j, c := range cols {
				scratch[c] = colVals[j][k]
			}
			if !fn(int(rid), scratch) {
				return false
			}
		}
		return true
	})
}

// matchingRows returns the global row ids of live rows matching pred,
// without materializing any values (code-vector scan; see Scan). The
// result is pre-sized from the bitmap's popcount and freshly allocated —
// callers (Update/Delete) run exclusively and mutate the table while
// consuming it, so it must not alias pooled scan scratch.
func (t *Table) matchingRows(pred expr.Predicate) []int32 {
	s := t.acquireScratch()
	defer t.releaseScratch(s)
	match := t.matchBitmap(pred, s)
	src := match
	want := t.live
	if src == nil {
		src = t.liveSet
	} else {
		want = match.Count()
	}
	return src.AppendSet(make([]int32, 0, want+1), 0, t.totalRows())
}
