package colstore

import (
	"hybridstore/internal/compress"
	"hybridstore/internal/expr"
	"hybridstore/internal/value"
)

// colMatcher is a compiled per-column predicate test operating directly on
// dictionary codes: an order-preserving code range for the sorted main
// dictionary and a per-code boolean table for the unsorted delta
// dictionary. This is the column store's "implicit index" — predicates are
// answered without decoding values.
type colMatcher struct {
	col            int
	mainLo, mainHi uint32 // half-open code interval in the main dictionary
	deltaMatch     []bool // indexed by delta code
}

// compileMatchers turns a conjunction of column-vs-constant comparisons
// into code-level matchers. ok is false when the predicate shape is not
// supported (the caller falls back to row materialization).
func (t *Table) compileMatchers(pred expr.Predicate) ([]colMatcher, bool) {
	if pred == nil {
		return nil, true
	}
	if _, isTrue := pred.(expr.True); isTrue {
		return nil, true
	}
	conj := expr.Conjuncts(pred)
	// An *And containing unsupported children must fall back entirely.
	matchers := make([]colMatcher, 0, len(conj))
	for _, c := range conj {
		switch q := c.(type) {
		case *expr.Comparison:
			if q.Op == expr.Ne || q.Val.IsNull() {
				return nil, false
			}
			m, ok := t.compileComparison(q)
			if !ok {
				return nil, false
			}
			matchers = append(matchers, m)
		case *expr.Between:
			if q.Lo.IsNull() || q.Hi.IsNull() {
				return nil, false
			}
			m, ok := t.compileBetween(q)
			if !ok {
				return nil, false
			}
			matchers = append(matchers, m)
		default:
			return nil, false
		}
	}
	return matchers, true
}

func (t *Table) compileComparison(q *expr.Comparison) (colMatcher, bool) {
	if q.Col < 0 || q.Col >= len(t.cols) {
		return colMatcher{}, false
	}
	c := &t.cols[q.Col]
	var op compress.CodeRangeOp
	switch q.Op {
	case expr.Eq:
		op = compress.RangeEq
	case expr.Lt:
		op = compress.RangeLt
	case expr.Le:
		op = compress.RangeLe
	case expr.Gt:
		op = compress.RangeGt
	case expr.Ge:
		op = compress.RangeGe
	default:
		return colMatcher{}, false
	}
	lo, hi := c.mainDict.CodeRange(op, q.Val)
	m := colMatcher{col: q.Col, mainLo: lo, mainHi: hi}
	m.deltaMatch = make([]bool, c.deltaDict.Len())
	for code, v := range c.deltaDict.Values() {
		m.deltaMatch[code] = q.Op.Apply(value.Compare(v, q.Val))
	}
	return m, true
}

func (t *Table) compileBetween(q *expr.Between) (colMatcher, bool) {
	if q.Col < 0 || q.Col >= len(t.cols) {
		return colMatcher{}, false
	}
	c := &t.cols[q.Col]
	lo, _ := c.mainDict.CodeRange(compress.RangeGe, q.Lo)
	_, hi := c.mainDict.CodeRange(compress.RangeLe, q.Hi)
	m := colMatcher{col: q.Col, mainLo: lo, mainHi: hi}
	m.deltaMatch = make([]bool, c.deltaDict.Len())
	for code, v := range c.deltaDict.Values() {
		m.deltaMatch[code] = value.Compare(v, q.Lo) >= 0 && value.Compare(v, q.Hi) <= 0
	}
	return m, true
}

// matchBitmap evaluates pred over all row slots, returning a per-slot match
// bitmap that already excludes tombstoned rows. A nil return means "all
// live rows match". Compiled matchers are evaluated with dense per-column
// loops over the code vectors — the column store's sequential predicate
// scan.
func (t *Table) matchBitmap(pred expr.Predicate) []bool {
	if matchers, ok := t.compileMatchers(pred); ok {
		if len(matchers) == 0 {
			return nil
		}
		match := t.scratchBitmap()
		t.fillMatcher(&matchers[0], match, true)
		for i := 1; i < len(matchers); i++ {
			t.fillMatcher(&matchers[i], match, false)
		}
		if t.live != t.totalRows() {
			for rid := range match {
				if !t.valid[rid] {
					match[rid] = false
				}
			}
		}
		return match
	}
	// Fallback: materialize the referenced columns row by row.
	cols := expr.ColumnSet(pred)
	scratch := make([]value.Value, len(t.cols))
	match := t.scratchBitmap()
	for rid := range match {
		if !t.valid[rid] {
			match[rid] = false
			continue
		}
		t.materialize(rid, cols, scratch)
		match[rid] = pred.Matches(scratch)
	}
	return match
}

// scratchBitmap returns a per-table reusable bitmap sized to the current
// row slots. Every code path that uses it overwrites every slot, so no
// zeroing is needed. The engine serializes access per table.
func (t *Table) scratchBitmap() []bool {
	if cap(t.matchScratch) < t.totalRows() {
		t.matchScratch = make([]bool, t.totalRows()+4096)
	}
	return t.matchScratch[:t.totalRows()]
}

// fillMatcher evaluates one compiled matcher column-at-a-time. With
// first=true it initializes the bitmap, otherwise it ANDs into it.
func (t *Table) fillMatcher(m *colMatcher, match []bool, first bool) {
	c := &t.cols[m.col]
	lo, hi := m.mainLo, m.mainHi
	if first {
		if c.mainNulls == nil {
			c.mainCodes.RangeMatch(lo, hi, match)
		} else {
			nulls := c.mainNulls
			c.mainCodes.ForEach(func(i int, code uint32) {
				match[i] = !nulls[i] && code >= lo && code < hi
			})
		}
		for d, code := range c.deltaCodes {
			ok := m.deltaMatch[code]
			if c.deltaNulls != nil && c.deltaNulls[d] {
				ok = false
			}
			match[t.mainRows+d] = ok
		}
		return
	}
	if c.mainNulls == nil {
		c.mainCodes.RangeMatchAnd(lo, hi, match)
	} else {
		nulls := c.mainNulls
		c.mainCodes.ForEach(func(i int, code uint32) {
			if match[i] {
				match[i] = !nulls[i] && code >= lo && code < hi
			}
		})
	}
	for d, code := range c.deltaCodes {
		rid := t.mainRows + d
		if !match[rid] {
			continue
		}
		ok := m.deltaMatch[code]
		if c.deltaNulls != nil && c.deltaNulls[d] {
			ok = false
		}
		match[rid] = ok
	}
}

// Scan calls fn for each live row matching pred with the requested columns
// materialized into a reused scratch row (full table width; unrequested
// entries are stale). fn must not retain the slice. A nil cols materializes
// every column.
//
// Unlike the row store, point predicates get no index shortcut: the
// column store locates rows by evaluating the predicate over the code
// vectors (a sequential scan, fast per row but O(n)). This mirrors real
// column engines, where point access requires a dictionary probe plus a
// position scan, and is the OLTP disadvantage the paper's cost model
// charges the column store for. (The internal PK hash index accelerates
// only insert uniqueness checks, standing in for the dictionary-based
// duplicate test.)
func (t *Table) Scan(pred expr.Predicate, cols []int, fn func(rid int, row []value.Value) bool) {
	if cols == nil {
		cols = make([]int, len(t.cols))
		for i := range cols {
			cols[i] = i
		}
	}
	scratch := make([]value.Value, len(t.cols))
	match := t.matchBitmap(pred)
	for rid := 0; rid < t.totalRows(); rid++ {
		if match == nil {
			if !t.valid[rid] {
				continue
			}
		} else if !match[rid] {
			continue
		}
		t.materialize(rid, cols, scratch)
		if !fn(rid, scratch) {
			return
		}
	}
}

// matchingRows returns the global row ids of live rows matching pred,
// without materializing any values (code-vector scan; see Scan).
func (t *Table) matchingRows(pred expr.Predicate) []int32 {
	match := t.matchBitmap(pred)
	var out []int32
	for rid := 0; rid < t.totalRows(); rid++ {
		if match == nil {
			if t.valid[rid] {
				out = append(out, int32(rid))
			}
		} else if match[rid] {
			out = append(out, int32(rid))
		}
	}
	return out
}
