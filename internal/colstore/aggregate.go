package colstore

import (
	"hybridstore/internal/agg"
	"hybridstore/internal/bitset"
	"hybridstore/internal/exec"
	"hybridstore/internal/expr"
	"hybridstore/internal/value"
)

// Aggregate computes the given aggregates over live rows matching pred,
// grouped by the groupBy columns. It is the column store's analytical fast
// path: predicate evaluation happens on dictionary codes (matchBitmap),
// group and value columns are bulk-decoded block-at-a-time, and ungrouped
// aggregates use per-code counting — one decode per distinct value instead
// of one per row — which is how compression speeds up aggregation in the
// paper's column store (f_compression).
func (t *Table) Aggregate(specs []agg.Spec, groupBy []int, pred expr.Predicate) *agg.Result {
	return t.AggregateStop(specs, groupBy, pred, nil)
}

// AggregateStop is Aggregate with a cooperative cancellation hook: stop
// (when non-nil) is polled once per blockRows-sized block, and a true
// return abandons the aggregation, yielding a partial result the caller
// must discard. This is the "batch boundary" the engine's context
// cancellation rides on.
func (t *Table) AggregateStop(specs []agg.Spec, groupBy []int, pred expr.Predicate, stop func() bool) *agg.Result {
	return t.AggregateExec(specs, groupBy, pred, exec.Serial(stop))
}

// AggregateExec is Aggregate with an execution context: ex carries the
// cancellation hook and the worker pool the morsel loops draw helpers
// from. A nil ex (or nil ex.Pool) runs serially.
func (t *Table) AggregateExec(specs []agg.Spec, groupBy []int, pred expr.Predicate, ex *exec.Ctx) *agg.Result {
	res := agg.NewResult(specs, groupBy)
	res.SetOutputTypes(t.sch.ColTypes())
	s := t.acquireScratch()
	defer t.releaseScratch(s)
	match := t.matchBitmapExec(pred, s, ex) // nil means all live rows
	switch {
	case len(groupBy) == 0:
		t.aggregateGlobalExec(res, specs, match, s, ex)
	case len(groupBy) == 1:
		t.aggregateSingleGroup(res, specs, groupBy[0], match, ex)
	case len(groupBy) == 2 && t.pairGroupFeasible(groupBy):
		t.aggregatePairGroup(res, specs, groupBy, match, ex)
	default:
		t.aggregateGeneric(res, specs, groupBy, match, s, ex)
	}
	return res
}

// pairGroupDenseLimit bounds the dense bucket array used for two-column
// group-bys (product of the two dictionaries' sizes).
const pairGroupDenseLimit = 1 << 18

// pairGroupFeasible reports whether the two group columns' combined code
// space is small enough for the dense fast path.
func (t *Table) pairGroupFeasible(groupBy []int) bool {
	prod := 1
	for _, g := range groupBy {
		c := &t.cols[g]
		d := c.mainDict.Len() + c.deltaDict.Len() + 1 // +1 for NULL
		if d == 0 {
			d = 1
		}
		if prod > pairGroupDenseLimit/d {
			return false
		}
		prod *= d
	}
	return prod <= pairGroupDenseLimit
}

// rowSource returns the bitset the aggregation iterates: the match bitmap,
// or the tombstone mask when the whole table participates.
func (t *Table) rowSource(match bitset.Bits) bitset.Bits {
	if match == nil {
		return t.liveSet
	}
	return match
}

// countMatches counts contributing rows.
func (t *Table) countMatches(match bitset.Bits) int64 {
	if match == nil {
		return int64(t.live)
	}
	return int64(match.Count())
}

// codeAcc accumulates one (group, spec) cell over main-fragment rows:
// Float-sum plus count, with MIN/MAX tracked as dictionary codes (the
// sorted main dictionary makes code order value order).
type codeAcc struct {
	sum        float64
	cnt        int64
	minC, maxC uint32
}

// denseGroupAgg is the shared engine of the dense grouped fast paths:
// per-(group, spec) scalar accumulators indexed by a caller-computed dense
// group code. Per-row work over the main fragment is integer and float
// scalar ops only — no value comparisons, no per-row decode. Delta rows
// (unsorted dictionaries, few rows) fall back to value-based accumulators
// merged at fold time.
type denseGroupAgg struct {
	t         *Table
	specs     []agg.Spec
	accs      []codeAcc        // gTotal x len(specs)
	counts    []int64          // participating rows per group (COUNT(*))
	fvals     [][]float64      // per spec: main dictionary pre-decoded to floats
	deltaAccs [][]agg.Acc      // per group: value-based delta accumulators
	colBuf    map[int][]uint32 // per distinct value column: block decode buffer
}

func (t *Table) newDenseGroupAgg(specs []agg.Spec, gTotal int) *denseGroupAgg {
	da := &denseGroupAgg{
		t:      t,
		specs:  specs,
		accs:   make([]codeAcc, gTotal*len(specs)),
		counts: make([]int64, gTotal),
		fvals:  make([][]float64, len(specs)),
		colBuf: make(map[int][]uint32),
	}
	for i := range da.accs {
		da.accs[i].minC = ^uint32(0)
	}
	for si, s := range specs {
		if s.Col < 0 {
			continue
		}
		if _, ok := da.colBuf[s.Col]; !ok {
			da.colBuf[s.Col] = make([]uint32, blockRows)
		}
		mv := t.cols[s.Col].mainDict.Values()
		f := make([]float64, len(mv))
		for i, v := range mv {
			f[i] = v.Float()
		}
		da.fvals[si] = f
	}
	if t.deltaRows > 0 {
		da.deltaAccs = make([][]agg.Acc, gTotal)
	}
	return da
}

// addBatch folds one scan batch: rids[k] participates in group gidx[k].
// nm is the count of main-resident rows, mainN the block's main span.
func (da *denseGroupAgg) addBatch(rids []int32, gidx []uint32, b0, nm, mainN int) {
	t := da.t
	nspec := len(da.specs)
	for k := range rids {
		da.counts[gidx[k]]++
	}
	// Bulk-decode each distinct value column once per block, then
	// accumulate per spec (repeated columns — SUM(x) + AVG(x) — share
	// the decode).
	if nm > 0 {
		for col, buf := range da.colBuf {
			t.cols[col].mainCodes.UnpackBlock(b0, buf[:mainN])
		}
	}
	for si := range da.specs {
		s := &da.specs[si]
		if s.Col < 0 || nm == 0 {
			continue
		}
		c := &t.cols[s.Col]
		vcodes := da.colBuf[s.Col]
		f := da.fvals[si]
		if c.mainNulls == nil {
			for k := 0; k < nm; k++ {
				code := vcodes[int(rids[k])-b0]
				a := &da.accs[int(gidx[k])*nspec+si]
				a.sum += f[code]
				a.cnt++
				if code < a.minC {
					a.minC = code
				}
				if code > a.maxC {
					a.maxC = code
				}
			}
		} else {
			for k := 0; k < nm; k++ {
				rid := int(rids[k])
				if c.mainNulls[rid] {
					continue
				}
				code := vcodes[rid-b0]
				a := &da.accs[int(gidx[k])*nspec+si]
				a.sum += f[code]
				a.cnt++
				if code < a.minC {
					a.minC = code
				}
				if code > a.maxC {
					a.maxC = code
				}
			}
		}
	}
	// Delta rows: value-based accumulation (unsorted dictionary).
	for k := nm; k < len(rids); k++ {
		d := int(rids[k]) - t.mainRows
		b := da.deltaAccs[gidx[k]]
		if b == nil {
			b = make([]agg.Acc, nspec)
			da.deltaAccs[gidx[k]] = b
		}
		for si := range da.specs {
			s := &da.specs[si]
			if s.Col < 0 {
				continue
			}
			c := &t.cols[s.Col]
			if c.deltaNulls != nil && c.deltaNulls[d] {
				continue
			}
			b[si].Add(c.deltaDict.Value(c.deltaCodes[d]))
		}
	}
}

// merge folds another worker's accumulators (built from the same specs
// and group space) into da. Counts and sums add; code-space min/max
// transfer only from cells that saw rows (minC is all-ones when empty).
func (da *denseGroupAgg) merge(o *denseGroupAgg) {
	for g, c := range o.counts {
		da.counts[g] += c
	}
	for i := range da.accs {
		b := &o.accs[i]
		if b.cnt == 0 {
			continue
		}
		a := &da.accs[i]
		a.sum += b.sum
		a.cnt += b.cnt
		if b.minC < a.minC {
			a.minC = b.minC
		}
		if b.maxC > a.maxC {
			a.maxC = b.maxC
		}
	}
	for g, b := range o.deltaAccs {
		if b == nil {
			continue
		}
		if da.deltaAccs[g] == nil {
			da.deltaAccs[g] = b
			continue
		}
		for si := range b {
			da.deltaAccs[g][si].Merge(&b[si])
		}
	}
}

// fold materializes every non-empty group into res. groupKey may reuse its
// returned slice (GroupFor copies).
func (da *denseGroupAgg) fold(res *agg.Result, groupKey func(g uint32) []value.Value) {
	t := da.t
	nspec := len(da.specs)
	for g := range da.counts {
		if da.counts[g] == 0 {
			continue
		}
		grp := res.GroupFor(groupKey(uint32(g)))
		for si := range da.specs {
			s := &da.specs[si]
			if s.Col < 0 {
				grp.Accs[si].AddCount(da.counts[g])
				continue
			}
			if a := &da.accs[g*nspec+si]; a.cnt > 0 {
				dict := t.cols[s.Col].mainDict
				grp.Accs[si].AddSummary(a.sum, a.cnt, dict.Value(a.minC), dict.Value(a.maxC))
			}
			if da.deltaAccs != nil && da.deltaAccs[g] != nil {
				grp.Accs[si].Merge(&da.deltaAccs[g][si])
			}
		}
	}
}

// forBatches iterates the participating rows of match (nil = all live) in
// blockRows batches, handing each batch's ascending rids plus its
// main/delta split to fn: nm rids are main-resident, and the block's main
// span holds mainN rows starting at b0. fn returning false stops the
// iteration. It is the single block-iteration skeleton under scanBatches,
// JoinProbe and the grouped aggregates.
func (t *Table) forBatches(match bitset.Bits, fn func(rids []int32, b0, nm, mainN int) bool) {
	src := t.rowSource(match)
	total := t.totalRows()
	rids := make([]int32, 0, blockRows)
	for b0 := 0; b0 < total; b0 += blockRows {
		n := min(blockRows, total-b0)
		rids = src.AppendSet(rids[:0], b0, b0+n)
		if len(rids) == 0 {
			continue
		}
		nm, mainN := t.splitBatch(rids, b0, n)
		if !fn(rids, b0, nm, mainN) {
			return
		}
	}
}

func (t *Table) aggregateGlobal(res *agg.Result, specs []agg.Spec, match bitset.Bits, s *scanScratch, stop func() bool) {
	g := res.Global()
	codes := s.codeBuf()
	var rids []int32
	dense := match == nil && t.live == t.totalRows()
	for si, s := range specs {
		if s.Col < 0 {
			g.Accs[si].AddCount(t.countMatches(match))
			continue
		}
		c := &t.cols[s.Col]
		// Per-code counting over the main fragment, block-at-a-time.
		if t.mainRows > 0 {
			counts := make([]int64, c.mainDict.Len())
			if dense && c.mainNulls == nil {
				// Fully dense main fragment: bulk-decode and count with no
				// per-row branches at all.
				for b0 := 0; b0 < t.mainRows; b0 += blockRows {
					if stop != nil && stop() {
						return
					}
					n := min(blockRows, t.mainRows-b0)
					c.mainCodes.UnpackBlock(b0, codes[:n])
					for _, code := range codes[:n] {
						counts[code]++
					}
				}
			} else {
				src := t.rowSource(match)
				if rids == nil {
					rids = make([]int32, 0, blockRows)
				}
				nulls := c.mainNulls
				for b0 := 0; b0 < t.mainRows; b0 += blockRows {
					if stop != nil && stop() {
						return
					}
					n := min(blockRows, t.mainRows-b0)
					rids = src.AppendSet(rids[:0], b0, b0+n)
					if len(rids) == 0 {
						continue
					}
					c.mainCodes.UnpackBlock(b0, codes[:n])
					if nulls == nil {
						for _, rid := range rids {
							counts[codes[int(rid)-b0]]++
						}
					} else {
						for _, rid := range rids {
							if !nulls[rid] {
								counts[codes[int(rid)-b0]]++
							}
						}
					}
				}
			}
			for code, cnt := range counts {
				if cnt > 0 {
					g.Accs[si].AddWeighted(c.mainDict.Value(uint32(code)), cnt)
				}
			}
		}
		// Per-code counting over the delta fragment.
		t.aggregateGlobalDelta(&g.Accs[si], c, match, dense)
	}
}

// aggregateGlobalDelta folds the delta fragment of one value column into
// an ungrouped accumulator by per-code counting. Shared by the serial and
// morsel-parallel global paths (the delta is small and always serial).
func (t *Table) aggregateGlobalDelta(acc *agg.Acc, c *column, match bitset.Bits, dense bool) {
	if t.deltaRows == 0 {
		return
	}
	counts := make([]int64, c.deltaDict.Len())
	if dense && c.deltaNulls == nil {
		for _, code := range c.deltaCodes {
			counts[code]++
		}
	} else {
		src := t.rowSource(match)
		for d, code := range c.deltaCodes {
			rid := t.mainRows + d
			if !src.Get(rid) {
				continue
			}
			if c.deltaNulls != nil && c.deltaNulls[d] {
				continue
			}
			counts[code]++
		}
	}
	for code, cnt := range counts {
		if cnt > 0 {
			acc.AddWeighted(c.deltaDict.Value(uint32(code)), cnt)
		}
	}
}

// denseWorkerState is the per-worker state of the dense grouped paths: a
// private accumulator array plus the group-code staging buffers. Workers
// never share one, so addBatch needs no synchronization; the states merge
// pairwise after the morsel loop drains.
type denseWorkerState struct {
	da     *denseGroupAgg
	gcodes []uint32 // first group column's block codes
	gcode2 []uint32 // second group column's block codes (pair path)
	gidx   []uint32 // dense group index per batch row
}

// denseStates lazily allocates per-worker dense aggregation state.
func (t *Table) denseStates(ex *exec.Ctx, specs []agg.Spec, gTotal int, pair bool) ([]*denseWorkerState, func(w int) *denseWorkerState) {
	states := make([]*denseWorkerState, ex.Workers(t.NumBlocks()))
	get := func(w int) *denseWorkerState {
		st := states[w]
		if st == nil {
			st = &denseWorkerState{
				da:     t.newDenseGroupAgg(specs, gTotal),
				gcodes: make([]uint32, blockRows),
				gidx:   make([]uint32, blockRows),
			}
			if pair {
				st.gcode2 = make([]uint32, blockRows)
			}
			states[w] = st
		}
		return st
	}
	return states, get
}

// mergeDenseStates folds the per-worker accumulators into one (nil when
// no worker saw a row, i.e. the result has no groups).
func mergeDenseStates(states []*denseWorkerState) *denseGroupAgg {
	var out *denseGroupAgg
	for _, st := range states {
		if st == nil {
			continue
		}
		if out == nil {
			out = st.da
		} else {
			out.merge(st.da)
		}
	}
	return out
}

// aggregateSingleGroup groups by one column. The group column's combined
// codes (main, then delta offset by the main dictionary's size, then a
// NULL slot) index the dense accumulator engine directly.
func (t *Table) aggregateSingleGroup(res *agg.Result, specs []agg.Spec, gcol int, match bitset.Bits, ex *exec.Ctx) {
	gc := &t.cols[gcol]
	gMain := gc.mainDict.Len()
	gTotal := gMain + gc.deltaDict.Len() + 1 // +1: NULL group slot
	gNull := uint32(gTotal - 1)

	ex = denseGroupCtx(ex, gTotal, len(specs))
	states, state := t.denseStates(ex, specs, gTotal, false)
	t.forBatchesExec(match, ex, func(w int, rids []int32, b0, nm, mainN int) bool {
		st := state(w)
		gcodes, gidx := st.gcodes, st.gidx
		if mainN > 0 {
			gc.mainCodes.UnpackBlock(b0, gcodes[:mainN])
		}
		if gc.mainNulls == nil {
			for k := 0; k < nm; k++ {
				gidx[k] = gcodes[int(rids[k])-b0]
			}
		} else {
			for k := 0; k < nm; k++ {
				rid := int(rids[k])
				if gc.mainNulls[rid] {
					gidx[k] = gNull
				} else {
					gidx[k] = gcodes[rid-b0]
				}
			}
		}
		for k := nm; k < len(rids); k++ {
			d := int(rids[k]) - t.mainRows
			if gc.deltaNulls != nil && gc.deltaNulls[d] {
				gidx[k] = gNull
			} else {
				gidx[k] = uint32(gMain) + gc.deltaCodes[d]
			}
		}
		st.da.addBatch(rids, gidx, b0, nm, mainN)
		return true
	})
	da := mergeDenseStates(states)
	if da == nil || ex.Stopped() {
		return
	}

	key := make([]value.Value, 1)
	da.fold(res, func(g uint32) []value.Value {
		switch {
		case g == gNull:
			key[0] = value.Null(gc.typ)
		case int(g) < gMain:
			key[0] = gc.mainDict.Value(g)
		default:
			key[0] = gc.deltaDict.Value(g - uint32(gMain))
		}
		return key
	})
}

// aggregatePairGroup groups by two low-cardinality columns using the dense
// accumulator engine indexed by the combined codes — the typical shape of
// analytical queries like TPC-H Q1 (GROUP BY l_returnflag, l_linestatus).
// Both group columns' codes are bulk-decoded per block.
func (t *Table) aggregatePairGroup(res *agg.Result, specs []agg.Spec, groupBy []int, match bitset.Bits, ex *exec.Ctx) {
	g0, g1 := &t.cols[groupBy[0]], &t.cols[groupBy[1]]
	// Combined code: local code offset by fragment (delta codes follow
	// main codes; the extra slot at the end is the NULL key).
	d0 := g0.mainDict.Len() + g0.deltaDict.Len() + 1
	d1 := g1.mainDict.Len() + g1.deltaDict.Len() + 1
	null0, null1 := uint32(d0-1), uint32(d1-1)
	mainLen0, mainLen1 := uint32(g0.mainDict.Len()), uint32(g1.mainDict.Len())

	ex = denseGroupCtx(ex, d0*d1, len(specs))
	states, state := t.denseStates(ex, specs, d0*d1, true)
	t.forBatchesExec(match, ex, func(w int, rids []int32, b0, nm, mainN int) bool {
		st := state(w)
		codes0, codes1, gidx := st.gcodes, st.gcode2, st.gidx
		if mainN > 0 {
			g0.mainCodes.UnpackBlock(b0, codes0[:mainN])
			g1.mainCodes.UnpackBlock(b0, codes1[:mainN])
		}
		for k := 0; k < nm; k++ {
			rid := int(rids[k])
			k0, k1 := codes0[rid-b0], codes1[rid-b0]
			if g0.mainNulls != nil && g0.mainNulls[rid] {
				k0 = null0
			}
			if g1.mainNulls != nil && g1.mainNulls[rid] {
				k1 = null1
			}
			gidx[k] = k0*uint32(d1) + k1
		}
		for k := nm; k < len(rids); k++ {
			d := int(rids[k]) - t.mainRows
			k0, k1 := null0, null1
			if g0.deltaNulls == nil || !g0.deltaNulls[d] {
				k0 = mainLen0 + g0.deltaCodes[d]
			}
			if g1.deltaNulls == nil || !g1.deltaNulls[d] {
				k1 = mainLen1 + g1.deltaCodes[d]
			}
			gidx[k] = k0*uint32(d1) + k1
		}
		st.da.addBatch(rids, gidx, b0, nm, mainN)
		return true
	})
	da := mergeDenseStates(states)
	if da == nil || ex.Stopped() {
		return
	}

	valueOf := func(c *column, code, null uint32) value.Value {
		if code == null {
			return value.Null(c.typ)
		}
		if int(code) < c.mainDict.Len() {
			return c.mainDict.Value(code)
		}
		return c.deltaDict.Value(code - uint32(c.mainDict.Len()))
	}
	key := make([]value.Value, 2)
	da.fold(res, func(g uint32) []value.Value {
		key[0] = valueOf(g0, g/uint32(d1), null0)
		key[1] = valueOf(g1, g%uint32(d1), null1)
		return key
	})
}

// aggregateGeneric handles multi-column group-bys by materializing the key
// per row through the batched scan.
func (t *Table) aggregateGeneric(res *agg.Result, specs []agg.Spec, groupBy []int, match bitset.Bits, sc *scanScratch, ex *exec.Ctx) {
	colIdx := make(map[int]int)
	var cols []int
	need := func(c int) {
		if _, ok := colIdx[c]; !ok {
			colIdx[c] = len(cols)
			cols = append(cols, c)
		}
	}
	for _, c := range groupBy {
		need(c)
	}
	for _, s := range specs {
		if s.Col >= 0 {
			need(s.Col)
		}
	}
	// Positional indices keep the per-row loop free of map lookups.
	groupPos := make([]int, len(groupBy))
	for i, c := range groupBy {
		groupPos[i] = colIdx[c]
	}
	specPos := make([]int, len(specs))
	for si, s := range specs {
		specPos[si] = -1
		if s.Col >= 0 {
			specPos[si] = colIdx[s.Col]
		}
	}
	accumulate := func(into *agg.Result, key []value.Value, rids []int32, colVals [][]value.Value) {
		for k := range rids {
			for i, p := range groupPos {
				key[i] = colVals[p][k]
			}
			g := into.GroupFor(key)
			for si, p := range specPos {
				if p < 0 {
					g.Accs[si].AddCount(1)
				} else {
					g.Accs[si].Add(colVals[p][k])
				}
			}
		}
	}
	if !ex.Parallel(t.NumBlocks()) || t.totalRows() < parallelMinRows {
		key := make([]value.Value, len(groupBy))
		stop := ex.StopHook()
		t.scanBatches(match, cols, sc, func(rids []int32, colVals [][]value.Value) bool {
			if stop != nil && stop() {
				return false
			}
			accumulate(res, key, rids, colVals)
			return true
		})
		return
	}
	// Parallel: per-worker partial results (hash-grouped) gathered over
	// per-worker scratch buffers, merged into res after the loop. Group
	// order across runs is not deterministic — it follows the morsel
	// partition — which SQL does not promise for unordered results.
	type genState struct {
		res   *agg.Result
		s     *scanScratch
		views [][]value.Value
		key   []value.Value
	}
	states := make([]*genState, ex.Workers(t.NumBlocks()))
	t.forBatchesExec(match, ex, func(w int, rids []int32, b0, nm, mainN int) bool {
		st := states[w]
		if st == nil {
			pr := agg.NewResult(specs, groupBy)
			pr.SetOutputTypes(t.sch.ColTypes())
			st = &genState{
				res:   pr,
				s:     t.acquireScratch(),
				views: make([][]value.Value, len(cols)),
				key:   make([]value.Value, len(groupBy)),
			}
			states[w] = st
		}
		bufs := st.s.colBufs(len(cols))
		codes := st.s.codeBuf()
		for j, cidx := range cols {
			st.views[j] = bufs[j][:len(rids)]
			t.gatherColumn(&t.cols[cidx], rids, b0, nm, mainN, codes, st.views[j])
		}
		accumulate(st.res, st.key, rids, st.views)
		return true
	})
	for _, st := range states {
		if st == nil {
			continue
		}
		if !ex.Stopped() {
			res.Merge(st.res)
		}
		t.releaseScratch(st.s)
	}
}
