package colstore

import (
	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/value"
)

// Aggregate computes the given aggregates over live rows matching pred,
// grouped by the groupBy columns. It is the column store's analytical fast
// path: predicate evaluation happens on dictionary codes (matchBitmap) and
// ungrouped aggregates use per-code counting — one decode per distinct
// value instead of one per row — which is how compression speeds up
// aggregation in the paper's column store (f_compression).
func (t *Table) Aggregate(specs []agg.Spec, groupBy []int, pred expr.Predicate) *agg.Result {
	res := agg.NewResult(specs, groupBy)
	match := t.matchBitmap(pred) // nil means all live rows
	switch {
	case len(groupBy) == 0:
		t.aggregateGlobal(res, specs, match)
	case len(groupBy) == 1:
		t.aggregateSingleGroup(res, specs, groupBy[0], match)
	case len(groupBy) == 2 && t.pairGroupFeasible(groupBy):
		t.aggregatePairGroup(res, specs, groupBy, match)
	default:
		t.aggregateGeneric(res, specs, groupBy, match)
	}
	return res
}

// pairGroupDenseLimit bounds the dense bucket array used for two-column
// group-bys (product of the two dictionaries' sizes).
const pairGroupDenseLimit = 1 << 18

// pairGroupFeasible reports whether the two group columns' combined code
// space is small enough for the dense fast path.
func (t *Table) pairGroupFeasible(groupBy []int) bool {
	prod := 1
	for _, g := range groupBy {
		c := &t.cols[g]
		d := c.mainDict.Len() + c.deltaDict.Len() + 1 // +1 for NULL
		if d == 0 {
			d = 1
		}
		if prod > pairGroupDenseLimit/d {
			return false
		}
		prod *= d
	}
	return prod <= pairGroupDenseLimit
}

// aggregatePairGroup groups by two low-cardinality columns using a dense
// bucket array indexed by the combined codes — the typical shape of
// analytical queries like TPC-H Q1 (GROUP BY l_returnflag, l_linestatus).
func (t *Table) aggregatePairGroup(res *agg.Result, specs []agg.Spec, groupBy []int, match []bool) {
	g0, g1 := &t.cols[groupBy[0]], &t.cols[groupBy[1]]
	// Combined code: local code offset by fragment (delta codes follow
	// main codes; the extra slot at the end is the NULL key).
	d0 := g0.mainDict.Len() + g0.deltaDict.Len() + 1
	d1 := g1.mainDict.Len() + g1.deltaDict.Len() + 1
	null0, null1 := uint32(d0-1), uint32(d1-1)
	codeOf := func(c *column, rid int, null uint32) uint32 {
		if c.isNullAt(rid, t.mainRows) {
			return null
		}
		if rid < t.mainRows {
			return c.mainCodes.Get(rid)
		}
		return uint32(c.mainDict.Len()) + c.deltaCodes[rid-t.mainRows]
	}
	buckets := make([][]agg.Acc, d0*d1)
	for rid := 0; rid < t.totalRows(); rid++ {
		if !t.participates(match, rid) {
			continue
		}
		key := codeOf(g0, rid, null0)*uint32(d1) + codeOf(g1, rid, null1)
		b := buckets[key]
		if b == nil {
			b = make([]agg.Acc, len(specs))
			buckets[key] = b
		}
		for si, s := range specs {
			if s.Col < 0 {
				b[si].AddCount(1)
				continue
			}
			c := &t.cols[s.Col]
			if c.isNullAt(rid, t.mainRows) {
				continue
			}
			b[si].Add(c.valueAt(rid, t.mainRows))
		}
	}
	valueOf := func(c *column, code, null uint32) value.Value {
		if code == null {
			return value.Null(c.typ)
		}
		if int(code) < c.mainDict.Len() {
			return c.mainDict.Value(code)
		}
		return c.deltaDict.Value(code - uint32(c.mainDict.Len()))
	}
	for key, b := range buckets {
		if b == nil {
			continue
		}
		k0 := uint32(key) / uint32(d1)
		k1 := uint32(key) % uint32(d1)
		grp := res.GroupFor([]value.Value{valueOf(g0, k0, null0), valueOf(g1, k1, null1)})
		for i := range b {
			grp.Accs[i].Merge(&b[i])
		}
	}
}

// participates reports whether row slot rid contributes.
func (t *Table) participates(match []bool, rid int) bool {
	if match == nil {
		return t.valid[rid]
	}
	return match[rid]
}

// countMatches counts contributing rows.
func (t *Table) countMatches(match []bool) int64 {
	if match == nil {
		return int64(t.live)
	}
	var n int64
	for _, m := range match {
		if m {
			n++
		}
	}
	return n
}

func (t *Table) aggregateGlobal(res *agg.Result, specs []agg.Spec, match []bool) {
	g := res.Global()
	for si, s := range specs {
		if s.Col < 0 {
			g.Accs[si].AddCount(t.countMatches(match))
			continue
		}
		c := &t.cols[s.Col]
		// Per-code counting over the main fragment.
		if t.mainRows > 0 {
			counts := make([]int64, c.mainDict.Len())
			if c.mainNulls == nil && match == nil && t.live == t.totalRows() {
				// Fully dense main fragment: no per-row branches at all
				// (delta rows, if any, are handled below).
				c.mainCodes.ForEach(func(i int, code uint32) { counts[code]++ })
			} else {
				c.mainCodes.ForEach(func(i int, code uint32) {
					if !t.participates(match, i) {
						return
					}
					if c.mainNulls != nil && c.mainNulls[i] {
						return
					}
					counts[code]++
				})
			}
			for code, cnt := range counts {
				if cnt > 0 {
					g.Accs[si].AddWeighted(c.mainDict.Value(uint32(code)), cnt)
				}
			}
		}
		// Per-code counting over the delta fragment.
		if t.deltaRows > 0 {
			counts := make([]int64, c.deltaDict.Len())
			if c.deltaNulls == nil && match == nil && t.live == t.totalRows() {
				for _, code := range c.deltaCodes {
					counts[code]++
				}
			} else {
				for d, code := range c.deltaCodes {
					rid := t.mainRows + d
					if !t.participates(match, rid) {
						continue
					}
					if c.deltaNulls != nil && c.deltaNulls[d] {
						continue
					}
					counts[code]++
				}
			}
			for code, cnt := range counts {
				if cnt > 0 {
					g.Accs[si].AddWeighted(c.deltaDict.Value(uint32(code)), cnt)
				}
			}
		}
	}
}

// aggregateSingleGroup groups by one column using per-fragment dense
// bucket arrays indexed by the group column's dictionary codes.
func (t *Table) aggregateSingleGroup(res *agg.Result, specs []agg.Spec, gcol int, match []bool) {
	gc := &t.cols[gcol]
	// Pre-decode spec column dictionaries so the per-row work is an
	// integer code lookup plus an accumulator update.
	type fragVals struct {
		main  []value.Value
		delta []value.Value
	}
	specVals := make([]fragVals, len(specs))
	for si, s := range specs {
		if s.Col < 0 {
			continue
		}
		c := &t.cols[s.Col]
		fv := fragVals{
			main:  c.mainDict.Values(),
			delta: c.deltaDict.Values(),
		}
		specVals[si] = fv
	}

	// buckets per fragment, indexed by group code; NULL group key gets a
	// dedicated bucket.
	mainBuckets := make([][]agg.Acc, gc.mainDict.Len())
	deltaBuckets := make([][]agg.Acc, gc.deltaDict.Len())
	var nullBucket []agg.Acc

	add := func(bucket []agg.Acc, rid int) []agg.Acc {
		if bucket == nil {
			bucket = make([]agg.Acc, len(specs))
		}
		for si, s := range specs {
			if s.Col < 0 {
				bucket[si].AddCount(1)
				continue
			}
			c := &t.cols[s.Col]
			if c.isNullAt(rid, t.mainRows) {
				continue
			}
			if rid < t.mainRows {
				bucket[si].Add(specVals[si].main[c.mainCodes.Get(rid)])
			} else {
				bucket[si].Add(specVals[si].delta[c.deltaCodes[rid-t.mainRows]])
			}
		}
		return bucket
	}

	for rid := 0; rid < t.totalRows(); rid++ {
		if !t.participates(match, rid) {
			continue
		}
		if gc.isNullAt(rid, t.mainRows) {
			nullBucket = add(nullBucket, rid)
			continue
		}
		if rid < t.mainRows {
			code := gc.mainCodes.Get(rid)
			mainBuckets[code] = add(mainBuckets[code], rid)
		} else {
			code := gc.deltaCodes[rid-t.mainRows]
			deltaBuckets[code] = add(deltaBuckets[code], rid)
		}
	}

	fold := func(key value.Value, bucket []agg.Acc) {
		if bucket == nil {
			return
		}
		g := res.GroupFor([]value.Value{key})
		for i := range bucket {
			g.Accs[i].Merge(&bucket[i])
		}
	}
	for code, b := range mainBuckets {
		fold(gc.mainDict.Value(uint32(code)), b)
	}
	for code, b := range deltaBuckets {
		fold(gc.deltaDict.Value(uint32(code)), b)
	}
	if nullBucket != nil {
		fold(value.Null(gc.typ), nullBucket)
	}
}

// aggregateGeneric handles multi-column group-bys by materializing the key
// per row.
func (t *Table) aggregateGeneric(res *agg.Result, specs []agg.Spec, groupBy []int, match []bool) {
	key := make([]value.Value, len(groupBy))
	for rid := 0; rid < t.totalRows(); rid++ {
		if !t.participates(match, rid) {
			continue
		}
		for i, c := range groupBy {
			key[i] = t.cols[c].valueAt(rid, t.mainRows)
		}
		g := res.GroupFor(key)
		for si, s := range specs {
			if s.Col < 0 {
				g.Accs[si].AddCount(1)
				continue
			}
			g.Accs[si].Add(t.cols[s.Col].valueAt(rid, t.mainRows))
		}
	}
}
