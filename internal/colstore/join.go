package colstore

import (
	"hybridstore/internal/exec"
	"hybridstore/internal/expr"
	"hybridstore/internal/value"
)

// KeyDictValues returns the value for every code of column col in the
// combined code space used by JoinProbe: main-dictionary codes first, then
// delta codes offset by the main dictionary's size. A hash-join build side
// can be resolved once per distinct code instead of once per row — the
// dictionary-join optimization of columnar engines.
func (t *Table) KeyDictValues(col int) []value.Value {
	c := &t.cols[col]
	out := make([]value.Value, 0, c.mainDict.Len()+c.deltaDict.Len())
	out = append(out, c.mainDict.Values()...)
	out = append(out, c.deltaDict.Values()...)
	return out
}

// JoinProbe streams every live row matching pred as (key code, extra
// column values). Key codes live in the combined space of KeyDictValues;
// NULL keys yield code -1. extraVals is reused between calls — the
// callback must not retain it. Returning false stops the scan.
//
// The probe is vectorized: the match bitmap is computed once, key codes
// are bulk-decoded per block and the extra columns are gathered
// column-at-a-time, so the per-row work is an array read plus the
// callback.
func (t *Table) JoinProbe(keyCol int, extra []int, pred expr.Predicate, fn func(keyCode int64, extraVals []value.Value) bool) {
	t.JoinProbeExec(keyCol, extra, pred, nil, func(_ int, keyCode int64, extraVals []value.Value) bool {
		return fn(keyCode, extraVals)
	})
}

// JoinProbeExec is JoinProbe driven by the execution context: blocks are
// claimed as morsels and decoded into per-worker buffers, so an
// aggregating consumer keeps per-worker accumulators and merges them
// after the probe. fn additionally receives the worker id and must be
// safe for concurrent calls with distinct ids; row order across workers
// is not defined.
func (t *Table) JoinProbeExec(keyCol int, extra []int, pred expr.Predicate, ex *exec.Ctx, fn func(w int, keyCode int64, extraVals []value.Value) bool) {
	if t.totalRows() == 0 {
		return
	}
	s := t.acquireScratch()
	defer t.releaseScratch(s)
	match := t.matchBitmapExec(pred, s, ex)
	kc := &t.cols[keyCol]
	mainRows := t.mainRows
	mainLen := int64(kc.mainDict.Len())
	type jpState struct {
		s           *scanScratch
		gatherCodes []uint32
		extraVals   []value.Value
	}
	states := make([]*jpState, ex.Workers(t.NumBlocks()))
	defer func() {
		for _, st := range states {
			if st != nil && st.s != s {
				t.releaseScratch(st.s)
			}
		}
	}()
	t.forBatchesExec(match, ex, func(w int, rids []int32, b0, nm, mainN int) bool {
		st := states[w]
		if st == nil {
			sc := s // worker 0 reuses the matcher's scratch buffers
			if w != 0 {
				sc = t.acquireScratch()
			}
			st = &jpState{
				s:           sc,
				gatherCodes: make([]uint32, blockRows),
				extraVals:   make([]value.Value, len(extra)),
			}
			states[w] = st
		}
		keyCodes := st.s.codeBuf()
		extraBufs := st.s.colBufs(len(extra))
		if nm > 0 {
			kc.mainCodes.UnpackBlock(b0, keyCodes[:mainN])
		}
		for j, c := range extra {
			t.gatherColumn(&t.cols[c], rids, b0, nm, mainN, st.gatherCodes, extraBufs[j][:len(rids)])
		}
		for k, rid32 := range rids {
			rid := int(rid32)
			var code int64
			if rid < mainRows {
				if kc.mainNulls != nil && kc.mainNulls[rid] {
					code = -1
				} else {
					code = int64(keyCodes[rid-b0])
				}
			} else {
				d := rid - mainRows
				if kc.deltaNulls != nil && kc.deltaNulls[d] {
					code = -1
				} else {
					code = mainLen + int64(kc.deltaCodes[d])
				}
			}
			for j := range extra {
				st.extraVals[j] = extraBufs[j][k]
			}
			if !fn(w, code, st.extraVals) {
				return false
			}
		}
		return true
	})
}
