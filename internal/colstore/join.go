package colstore

import (
	"hybridstore/internal/expr"
	"hybridstore/internal/value"
)

// KeyDictValues returns the value for every code of column col in the
// combined code space used by JoinProbe: main-dictionary codes first, then
// delta codes offset by the main dictionary's size. A hash-join build side
// can be resolved once per distinct code instead of once per row — the
// dictionary-join optimization of columnar engines.
func (t *Table) KeyDictValues(col int) []value.Value {
	c := &t.cols[col]
	out := make([]value.Value, 0, c.mainDict.Len()+c.deltaDict.Len())
	out = append(out, c.mainDict.Values()...)
	out = append(out, c.deltaDict.Values()...)
	return out
}

// JoinProbe streams every live row matching pred as (key code, extra
// column values). Key codes live in the combined space of KeyDictValues;
// NULL keys yield code -1. extraVals is reused between calls — the
// callback must not retain it. Returning false stops the scan.
func (t *Table) JoinProbe(keyCol int, extra []int, pred expr.Predicate, fn func(keyCode int64, extraVals []value.Value) bool) {
	match := t.matchBitmap(pred)
	kc := &t.cols[keyCol]
	mainLen := int64(kc.mainDict.Len())
	extraVals := make([]value.Value, len(extra))
	for rid := 0; rid < t.totalRows(); rid++ {
		if match == nil {
			if !t.valid[rid] {
				continue
			}
		} else if !match[rid] {
			continue
		}
		var code int64
		switch {
		case kc.isNullAt(rid, t.mainRows):
			code = -1
		case rid < t.mainRows:
			code = int64(kc.mainCodes.Get(rid))
		default:
			code = mainLen + int64(kc.deltaCodes[rid-t.mainRows])
		}
		for i, c := range extra {
			extraVals[i] = t.cols[c].valueAt(rid, t.mainRows)
		}
		if !fn(code, extraVals) {
			return
		}
	}
}
