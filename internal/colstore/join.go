package colstore

import (
	"hybridstore/internal/expr"
	"hybridstore/internal/value"
)

// KeyDictValues returns the value for every code of column col in the
// combined code space used by JoinProbe: main-dictionary codes first, then
// delta codes offset by the main dictionary's size. A hash-join build side
// can be resolved once per distinct code instead of once per row — the
// dictionary-join optimization of columnar engines.
func (t *Table) KeyDictValues(col int) []value.Value {
	c := &t.cols[col]
	out := make([]value.Value, 0, c.mainDict.Len()+c.deltaDict.Len())
	out = append(out, c.mainDict.Values()...)
	out = append(out, c.deltaDict.Values()...)
	return out
}

// JoinProbe streams every live row matching pred as (key code, extra
// column values). Key codes live in the combined space of KeyDictValues;
// NULL keys yield code -1. extraVals is reused between calls — the
// callback must not retain it. Returning false stops the scan.
//
// The probe is vectorized: the match bitmap is computed once, key codes
// are bulk-decoded per block and the extra columns are gathered
// column-at-a-time, so the per-row work is an array read plus the
// callback.
func (t *Table) JoinProbe(keyCol int, extra []int, pred expr.Predicate, fn func(keyCode int64, extraVals []value.Value) bool) {
	if t.totalRows() == 0 {
		return
	}
	s := t.acquireScratch()
	defer t.releaseScratch(s)
	match := t.matchBitmap(pred, s)
	kc := &t.cols[keyCol]
	mainRows := t.mainRows
	mainLen := int64(kc.mainDict.Len())
	keyCodes := s.codeBuf()
	gatherCodes := make([]uint32, blockRows)
	extraVals := make([]value.Value, len(extra))
	extraBufs := s.colBufs(len(extra))
	t.forBatches(match, func(rids []int32, b0, nm, mainN int) bool {
		if nm > 0 {
			kc.mainCodes.UnpackBlock(b0, keyCodes[:mainN])
		}
		for j, c := range extra {
			t.gatherColumn(&t.cols[c], rids, b0, nm, mainN, gatherCodes, extraBufs[j][:len(rids)])
		}
		for k, rid32 := range rids {
			rid := int(rid32)
			var code int64
			if rid < mainRows {
				if kc.mainNulls != nil && kc.mainNulls[rid] {
					code = -1
				} else {
					code = int64(keyCodes[rid-b0])
				}
			} else {
				d := rid - mainRows
				if kc.deltaNulls != nil && kc.deltaNulls[d] {
					code = -1
				} else {
					code = mainLen + int64(kc.deltaCodes[d])
				}
			}
			for j := range extra {
				extraVals[j] = extraBufs[j][k]
			}
			if !fn(code, extraVals) {
				return false
			}
		}
		return true
	})
}
