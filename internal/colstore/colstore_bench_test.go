package colstore

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/value"
)

// benchRows sizes the benchmark table, honoring the same HSBENCH_SCALE
// knob as the paper-figure benchmarks in bench_test.go (default 1.0;
// CI runs at 0.25).
func benchRows() int {
	scale := 1.0
	if s := os.Getenv("HSBENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			scale = v
		}
	}
	n := int(400_000 * scale)
	if n < 4096 {
		n = 4096
	}
	return n
}

// benchTable builds a merged table with a small delta tail, the steady
// state of the column store: id (unique), grp (64 distinct, unclustered),
// amount (~n/50 distinct, range-clustered like an insertion-ordered
// timestamp — the shape selective analytical predicates have in practice),
// note (16 distinct, nullable).
func benchTable(b *testing.B, n int) *Table {
	b.Helper()
	tb := New(testSchema())
	tb.AutoMerge = false
	rows := make([][]value.Value, 0, n)
	for i := 0; i < n; i++ {
		note := value.NewVarchar(fmt.Sprintf("n%d", i%16))
		if i%31 == 0 {
			note = value.Null(value.Varchar)
		}
		rows = append(rows, []value.Value{
			value.NewBigint(int64(i)),
			value.NewInt(int64(i % 64)),
			value.NewDouble(float64(i / 50)),
			note,
		})
	}
	if err := tb.Insert(rows); err != nil {
		b.Fatal(err)
	}
	tb.Merge()
	// ~2% of rows arrive after the merge and sit in the delta.
	tail := make([][]value.Value, 0, n/50)
	for i := n; i < n+n/50; i++ {
		tail = append(tail, mkRow(int64(i), int64(i%64), float64(i/50), "d"))
	}
	if err := tb.Insert(tail); err != nil {
		b.Fatal(err)
	}
	return tb
}

var benchSink interface{}

// BenchmarkMatchBitmap measures raw predicate evaluation over the code
// vectors (no materialization): a two-conjunct range predicate at ~10%
// selectivity.
func BenchmarkMatchBitmap(b *testing.B) {
	n := benchRows()
	tb := benchTable(b, n)
	pred := &expr.And{Preds: []expr.Predicate{
		&expr.Comparison{Col: 2, Op: expr.Lt, Val: value.NewDouble(float64(n / 5 / 50))},
		&expr.Comparison{Col: 1, Op: expr.Ge, Val: value.NewInt(32)},
	}}
	b.SetBytes(int64(tb.totalRows()))
	s := tb.acquireScratch()
	defer tb.releaseScratch(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = tb.matchBitmap(pred, s)
	}
}

// BenchmarkColScanSelective measures a selective scan (~2% of rows)
// materializing two columns.
func BenchmarkColScanSelective(b *testing.B) {
	n := benchRows()
	tb := benchTable(b, n)
	pred := &expr.Comparison{Col: 2, Op: expr.Ge, Val: value.NewDouble(float64((n - n/50) / 50))}
	b.SetBytes(int64(tb.totalRows()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		var sum float64
		tb.Scan(pred, []int{0, 2}, func(rid int, row []value.Value) bool {
			count++
			sum += row[2].Double()
			return true
		})
		benchSink = sum
	}
}

// BenchmarkColAggregateGroupBy measures a filtered single-column group-by
// (SUM + COUNT(*) over ~80% of rows, 64 groups) — the TPC-H Q1 shape the
// paper's column store is built for.
func BenchmarkColAggregateGroupBy(b *testing.B) {
	n := benchRows()
	tb := benchTable(b, n)
	pred := &expr.Comparison{Col: 2, Op: expr.Ge, Val: value.NewDouble(float64(n / 5 / 50))}
	specs := []agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Count, Col: -1}}
	b.SetBytes(int64(tb.totalRows()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = tb.Aggregate(specs, []int{1}, pred)
	}
}

// BenchmarkColAggregatePairGroup measures the dense two-column group-by
// fast path (grp x note).
func BenchmarkColAggregatePairGroup(b *testing.B) {
	n := benchRows()
	tb := benchTable(b, n)
	specs := []agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Count, Col: -1}}
	b.SetBytes(int64(tb.totalRows()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = tb.Aggregate(specs, []int{1, 3}, nil)
	}
}
