package colstore

// blockRows is the unit of vectorized execution: match bitmaps are built,
// code vectors bulk-decoded and batches emitted in blocks of this many row
// slots. It must be a multiple of 64 so blocks align to bitset words.
const blockRows = 1024

// codeZone is the zone-map summary of one blockRows-sized block of a
// main-fragment code vector: the min/max code present (over non-NULL rows)
// plus NULL presence. Because the main dictionary is sorted, a code range
// check against [lo, hi) decides block relevance without decoding it:
// blocks whose zone misses the predicate range are skipped, and blocks
// fully inside it (with no NULLs) match wholesale. lo > hi encodes a block
// with no non-NULL rows.
type codeZone struct {
	lo, hi  uint32
	hasNull bool
}

// overlaps reports whether any code in the block can lie in [lo, hi).
func (z codeZone) overlaps(lo, hi uint32) bool {
	return z.lo <= z.hi && z.hi >= lo && z.lo < hi
}

// within reports whether every code in the block lies in [lo, hi).
func (z codeZone) within(lo, hi uint32) bool {
	return z.lo <= z.hi && z.lo >= lo && z.hi < hi
}

// buildZones computes per-block zones for a freshly packed code vector.
// nulls may be nil (no NULLs).
func buildZones(codes []uint32, nulls []bool) []codeZone {
	zones := make([]codeZone, (len(codes)+blockRows-1)/blockRows)
	for b := range zones {
		start := b * blockRows
		end := min(start+blockRows, len(codes))
		z := codeZone{lo: ^uint32(0), hi: 0}
		for i := start; i < end; i++ {
			if nulls != nil && nulls[i] {
				z.hasNull = true
				continue
			}
			c := codes[i]
			if c < z.lo {
				z.lo = c
			}
			if c > z.hi {
				z.hi = c
			}
		}
		zones[b] = z
	}
	return zones
}

// patchZone widens row rid's zone after an in-place code overwrite (the
// column store's in-dictionary update path). Zones only ever widen, so
// they stay conservative until the next merge rebuilds them tight.
func patchZone(zones []codeZone, rid int, code uint32) {
	z := &zones[rid/blockRows]
	if code < z.lo {
		z.lo = code
	}
	if code > z.hi {
		z.hi = code
	}
}
