package colstore

import "hybridstore/internal/metrics"

// Cumulative column-store scan metrics: per-block zone-map outcomes,
// folded in once per finished scan (see scanCounts), and delta-vs-main
// row counts folded in once per scan batch stream. Together they show
// how much decode work the zone maps avoid and how much of the read
// traffic the write-optimized delta absorbs.
var (
	mBlocksDecoded = metrics.Default().Counter("hs_colstore_blocks_decoded_total",
		"main-fragment blocks the scan kernels had to decode")
	mBlocksZoneSkipped = metrics.Default().Counter("hs_colstore_blocks_zone_skipped_total",
		"main-fragment blocks excluded by zone maps without decoding")
	mBlocksZoneWholesale = metrics.Default().Counter("hs_colstore_blocks_zone_wholesale_total",
		"main-fragment blocks accepted wholesale by zone maps without decoding")
	mScanMainRows = metrics.Default().Counter("hs_colstore_scan_main_rows_total",
		"rows streamed out of compressed main fragments")
	mScanDeltaRows = metrics.Default().Counter("hs_colstore_scan_delta_rows_total",
		"rows streamed out of write-optimized delta fragments")
)
