package colstore

import (
	"fmt"
	"math/rand"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/rowstore"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func pairSchema() *schema.Table {
	return schema.MustNew("t", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "flag", Type: value.Varchar, Nullable: true},
		{Name: "status", Type: value.Varchar},
		{Name: "amount", Type: value.Double},
		{Name: "wide", Type: value.Bigint}, // high cardinality
	}, "id")
}

func TestPairGroupMatchesRowStore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cs := New(pairSchema())
	rs := rowstore.New(pairSchema())
	flags := []string{"A", "N", "R"}
	var rows [][]value.Value
	for i := 0; i < 2000; i++ {
		f := value.NewVarchar(flags[rng.Intn(3)])
		if rng.Intn(20) == 0 {
			f = value.Null(value.Varchar) // NULL group keys
		}
		rows = append(rows, []value.Value{
			value.NewBigint(int64(i)),
			f,
			value.NewVarchar([]string{"F", "O"}[rng.Intn(2)]),
			value.NewDouble(float64(rng.Intn(1000))),
			value.NewBigint(rng.Int63n(1 << 40)),
		})
	}
	if err := cs.Insert(rows); err != nil {
		t.Fatal(err)
	}
	if err := rs.Insert(rows); err != nil {
		t.Fatal(err)
	}
	cs.Merge()
	// Add delta rows so both fragments contribute codes.
	extra := [][]value.Value{{
		value.NewBigint(99999), value.NewVarchar("A"),
		value.NewVarchar("F"), value.NewDouble(5), value.NewBigint(1),
	}}
	if err := cs.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := rs.Insert(extra); err != nil {
		t.Fatal(err)
	}

	specs := []agg.Spec{{Func: agg.Sum, Col: 3}, {Func: agg.Count, Col: -1}}
	groupBy := []int{1, 2}
	if !cs.pairGroupFeasible(groupBy) {
		t.Fatal("low-cardinality pair should take the dense path")
	}
	for _, pred := range []expr.Predicate{
		nil,
		&expr.Comparison{Col: 3, Op: expr.Ge, Val: value.NewDouble(500)},
	} {
		cres := cs.Aggregate(specs, groupBy, pred)
		rres := rs.Aggregate(specs, groupBy, pred)
		if cres.NumGroups() != rres.NumGroups() {
			t.Fatalf("pred=%v: groups cs=%d rs=%d", pred, cres.NumGroups(), rres.NumGroups())
		}
		want := map[string][]value.Value{}
		for _, row := range rres.Rows() {
			want[row[0].String()+"|"+row[1].String()] = row
		}
		for _, row := range cres.Rows() {
			w, ok := want[row[0].String()+"|"+row[1].String()]
			if !ok {
				t.Fatalf("pred=%v: unexpected group %v/%v", pred, row[0], row[1])
			}
			if row[2].Float() != w[2].Float() || row[3].Int() != w[3].Int() {
				t.Fatalf("pred=%v group %v/%v: cs=%v,%v rs=%v,%v",
					pred, row[0], row[1], row[2], row[3], w[2], w[3])
			}
		}
	}
}

func TestPairGroupFeasibility(t *testing.T) {
	cs := New(pairSchema())
	var rows [][]value.Value
	for i := 0; i < 1000; i++ {
		rows = append(rows, []value.Value{
			value.NewBigint(int64(i)),
			value.NewVarchar(fmt.Sprintf("f%d", i)), // 1000 distinct
			value.NewVarchar("s"),
			value.NewDouble(1),
			value.NewBigint(int64(i)), // 1000 distinct
		})
	}
	if err := cs.Insert(rows); err != nil {
		t.Fatal(err)
	}
	cs.Merge()
	if !cs.pairGroupFeasible([]int{1, 2}) {
		t.Error("1000×1 product should be feasible")
	}
	// 1000 × 1000 = 1e6 > limit: must fall back.
	if cs.pairGroupFeasible([]int{1, 4}) {
		t.Error("1e6 code product should not take the dense path")
	}
	// The generic fallback must still be correct.
	res := cs.Aggregate([]agg.Spec{{Func: agg.Count, Col: -1}}, []int{1, 4}, nil)
	if res.NumGroups() != 1000 {
		t.Errorf("fallback groups = %d", res.NumGroups())
	}
}
