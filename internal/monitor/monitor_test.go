package monitor

import (
	"context"
	"sync"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func testSchema() *schema.Table {
	return schema.MustNew("t", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "grp", Type: value.Integer},
		{Name: "amount", Type: value.Double},
	}, "id")
}

func testDB(t *testing.T, store catalog.StoreKind, n int) *engine.Database {
	t.Helper()
	db := engine.New()
	if err := db.CreateTable(testSchema(), store); err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []value.Value{
			value.NewBigint(int64(i)), value.NewInt(int64(i % 7)), value.NewDouble(float64(i)),
		})
	}
	if n > 0 {
		if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "t", Rows: rows}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func aggQuery() *query.Query {
	return &query.Query{Kind: query.Aggregate, Table: "t",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}}, GroupBy: []int{1}}
}

func pointSelect(id int64) *query.Query {
	return &query.Query{Kind: query.Select, Table: "t",
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(id)}}
}

func TestSnapshotFeatures(t *testing.T) {
	db := testDB(t, catalog.ColumnStore, 100)
	if _, err := db.CollectStats("t"); err != nil {
		t.Fatal(err)
	}
	m := New(db, Config{Epochs: 4, RotateEvery: 0, SampleCap: 64})
	for i := 0; i < 10; i++ {
		if _, err := db.Exec(aggQuery()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if _, err := db.Exec(pointSelect(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	if snap.Seen != 40 || snap.WindowSeen != 40 {
		t.Fatalf("seen=%d window=%d, want 40/40", snap.Seen, snap.WindowSeen)
	}
	if snap.Queries.Len() != 40 {
		t.Errorf("sample size %d", snap.Queries.Len())
	}
	tw, ok := snap.Table("t")
	if !ok {
		t.Fatal("table window missing")
	}
	if tw.Ops.Aggregations != 10 || tw.Ops.PointSelects != 30 {
		t.Errorf("op mix: aggs=%d points=%d", tw.Ops.Aggregations, tw.Ops.PointSelects)
	}
	if want := 10.0 / 40; tw.OLAPFraction != want {
		t.Errorf("OLAP fraction %v, want %v", tw.OLAPFraction, want)
	}
	if tw.Rows != 100 {
		t.Errorf("live rows %d", tw.Rows)
	}
	if tw.AvgSelectivity <= 0 || tw.AvgSelectivity > 0.5 {
		t.Errorf("point-select mean selectivity %v out of range", tw.AvgSelectivity)
	}
	// Touched columns: id (point preds), grp (group by), amount (agg).
	if len(tw.TouchedCols) != 3 {
		t.Errorf("touched cols %v", tw.TouchedCols)
	}
	// The column store keeps the fresh inserts in its delta fragment.
	if tw.DeltaRows == 0 {
		t.Error("expected delta rows in the window")
	}
}

// TestRollingWindowAgesOutOldMix is the core rolling property: after the
// mix shifts, enough rotations remove the old phase from the window.
func TestRollingWindowAgesOutOldMix(t *testing.T) {
	db := testDB(t, catalog.ColumnStore, 50)
	m := New(db, Config{Epochs: 3, RotateEvery: 10, SampleCap: 32})
	for i := 0; i < 30; i++ { // three full OLAP epochs
		if _, err := db.Exec(aggQuery()); err != nil {
			t.Fatal(err)
		}
	}
	if snap := m.Snapshot(); snap.Tables[0].OLAPFraction < 0.5 {
		t.Fatalf("window should be OLAP-heavy, got %v", snap.Tables[0].OLAPFraction)
	}
	for i := 0; i < 30; i++ { // three full OLTP epochs push the OLAP ones out
		if _, err := db.Exec(pointSelect(int64(i % 50))); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	tw, _ := snap.Table("t")
	if tw.Ops.Aggregations != 0 {
		t.Errorf("OLAP phase should have aged out, still %d aggs in window", tw.Ops.Aggregations)
	}
	if snap.Seen != 60 {
		t.Errorf("lifetime seen %d", snap.Seen)
	}
	if snap.WindowSeen >= 60 {
		t.Errorf("window seen %d should be bounded by the ring", snap.WindowSeen)
	}
}

func TestPerPartitionAttribution(t *testing.T) {
	db := engine.New()
	spec := &catalog.PartitionSpec{Horizontal: &catalog.HorizontalSpec{
		SplitCol: 0, SplitVal: value.NewBigint(50),
		HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
	}}
	if err := db.CreateTableWithLayout(testSchema(), catalog.RowStore, spec); err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 0, 100)
	for i := 0; i < 100; i++ {
		rows = append(rows, []value.Value{
			value.NewBigint(int64(i)), value.NewInt(0), value.NewDouble(1),
		})
	}
	m := New(db, Config{Epochs: 2, SampleCap: 16})
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "t", Rows: rows}); err != nil {
		t.Fatal(err)
	}
	// Hot-only point select (key above split), cold-only (below), and an
	// unconstrained aggregate touching both.
	if _, err := db.Exec(pointSelect(80)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(pointSelect(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(aggQuery()); err != nil {
		t.Fatal(err)
	}
	tw, ok := m.Snapshot().Table("t")
	if !ok || tw.Partitions == nil {
		t.Fatal("partition window missing")
	}
	p := tw.Partitions
	// The bulk insert spans both sides; the point selects split 1/1; the
	// aggregate hits both.
	if p.HotOps != 1 || p.ColdOps != 1 || p.BothOps != 2 {
		t.Errorf("hot/cold/both = %d/%d/%d, want 1/1/2", p.HotOps, p.ColdOps, p.BothOps)
	}
}

// TestConcurrentObserveAndSnapshot exercises the monitor under parallel
// query traffic and snapshotting (run with -race).
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	db := testDB(t, catalog.ColumnStore, 200)
	m := New(db, Config{Epochs: 3, RotateEvery: 50, SampleCap: 32})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if g%2 == 0 {
					db.Exec(aggQuery()) //nolint:errcheck
				} else {
					db.Exec(pointSelect(int64(i % 200))) //nolint:errcheck
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		_ = m.Snapshot()
	}
	wg.Wait()
	if got := m.Seen(); got != 400 {
		t.Errorf("seen %d, want 400", got)
	}
	snap := m.Snapshot()
	tw, ok := snap.Table("t")
	if !ok || tw.Ops.TotalQueries() == 0 {
		t.Fatal("window empty after concurrent traffic")
	}
}

func TestSessionAttribution(t *testing.T) {
	db := testDB(t, catalog.RowStore, 50)
	m := New(db, Config{Epochs: 3, RotateEvery: 10, SampleCap: 32})

	olap := engine.WithSession(context.Background(), "analyst#1")
	oltp := engine.WithSession(context.Background(), "writer#2")
	for i := 0; i < 12; i++ {
		if _, err := db.ExecContext(olap, aggQuery()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := db.ExecContext(oltp, &query.Query{
			Kind: query.Update, Table: "t",
			Set:  map[int]value.Value{2: value.NewDouble(float64(i))},
			Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(int64(i))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Unattributed statements must not grow the session list.
	if _, err := db.Exec(pointSelect(1)); err != nil {
		t.Fatal(err)
	}

	snap := m.Snapshot()
	if len(snap.Sessions) != 2 {
		t.Fatalf("sessions = %+v", snap.Sessions)
	}
	byName := map[string]SessionWindow{}
	for _, sw := range snap.Sessions {
		byName[sw.Name] = sw
	}
	an := byName["analyst#1"]
	if an.Queries != 12 || an.OLAP != 12 || an.DML != 0 {
		t.Fatalf("analyst window: %+v", an)
	}
	wr := byName["writer#2"]
	if wr.Queries != 8 || wr.OLAP != 0 || wr.DML != 8 {
		t.Fatalf("writer window: %+v", wr)
	}
	if len(wr.Tables) != 1 || wr.Tables[0] != "t" {
		t.Fatalf("writer tables: %v", wr.Tables)
	}
	// Sessions age out with the window like everything else: the
	// attribution spans epochs (RotateEvery=10 rotated at least once
	// above), and resetting clears it.
	m.Reset()
	if got := m.Snapshot(); len(got.Sessions) != 0 {
		t.Fatalf("sessions survived reset: %+v", got.Sessions)
	}
}
