package monitor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hybridstore/internal/query"
	"hybridstore/internal/stats"
)

// PartitionWindow is the per-partition operation attribution of one
// horizontally partitioned table over the window.
type PartitionWindow struct {
	// HotOps/ColdOps count operations confined to one side by the split
	// predicate; BothOps touched (or could touch) both partitions.
	HotOps, ColdOps, BothOps int
}

// TableWindow is the rolling feature vector of one table — the same
// features the cost model consumes, refreshed live.
type TableWindow struct {
	Name string

	// Ops is the merged extended-statistics record over the window
	// (operation mix, per-attribute update/aggregation/predicate
	// counters, wide-update and hot-range tracking).
	Ops *stats.TableStats

	// Rows and DeltaRows are the live storage counts at snapshot time.
	Rows      int
	DeltaRows int

	// OLAPFraction is the share of aggregation queries in the window.
	OLAPFraction float64
	// AvgSelectivity is the mean estimated selectivity of observed
	// predicates (1 when no predicate was ever estimated).
	AvgSelectivity float64
	// TouchedCols lists the columns referenced by any observed query.
	TouchedCols []int

	// Partitions is set for horizontally partitioned tables.
	Partitions *PartitionWindow
}

// String renders the window compactly for shell display.
func (tw TableWindow) String() string {
	o := tw.Ops
	s := fmt.Sprintf("%s: %d ops (ins %d, upd %d, del %d, sel %d, agg %d), olap=%.0f%%, sel~%.3f, rows=%d, delta=%d",
		tw.Name, o.TotalQueries(), o.Inserts, o.Updates, o.Deletes,
		o.PointSelects+o.RangeSelects, o.Aggregations,
		tw.OLAPFraction*100, tw.AvgSelectivity, tw.Rows, tw.DeltaRows)
	if p := tw.Partitions; p != nil {
		s += fmt.Sprintf(", hot/cold/both=%d/%d/%d", p.HotOps, p.ColdOps, p.BothOps)
	}
	return s
}

// SessionWindow is one session's (or network client's) share of the
// window — the multi-tenant attribution the network server feeds the
// advisor.
type SessionWindow struct {
	Name    string
	Queries int
	OLAP    int
	DML     int
	// Commits/Aborts count the session's explicit transaction
	// completions (BEGIN…COMMIT/ROLLBACK) in the window.
	Commits  int
	Aborts   int
	Duration time.Duration
	// Tables lists the tables the session touched, sorted by name.
	Tables []string
}

// String renders the session window compactly for shell display.
func (sw SessionWindow) String() string {
	s := fmt.Sprintf("%s: %d ops (olap %d, dml %d), %v total, tables [%s]",
		sw.Name, sw.Queries, sw.OLAP, sw.DML, sw.Duration, strings.Join(sw.Tables, " "))
	if sw.Commits > 0 || sw.Aborts > 0 {
		s += fmt.Sprintf(", txns %d/%d commit/abort", sw.Commits, sw.Aborts)
	}
	return s
}

// Snapshot is a point-in-time view of the rolling window: the advisor
// consumes it in place of a parsed workload file.
type Snapshot struct {
	// Queries is the retained workload sample across all epochs.
	Queries *query.Workload
	// Recorder is the merged extended-statistics recorder; it is a
	// private copy, safe to read without synchronization.
	Recorder *stats.Recorder
	// Tables holds the per-table feature windows, sorted by name.
	Tables []TableWindow
	// Sessions holds the per-session attribution, sorted by name
	// (only statements executed under engine.WithSession appear).
	Sessions []SessionWindow
	// Seen is the total number of queries observed since the monitor
	// started; WindowSeen counts only those still inside the window.
	Seen, WindowSeen int
}

// Table returns the window for a table (zero window if never observed).
func (s *Snapshot) Table(name string) (TableWindow, bool) {
	k := strings.ToLower(name)
	for _, tw := range s.Tables {
		if tw.Name == k {
			return tw, true
		}
	}
	return TableWindow{}, false
}

// Snapshot merges the window's epochs into a consistent point-in-time
// view. Storage counts (rows, delta size) are read from the live engine.
func (m *Monitor) Snapshot() *Snapshot {
	m.mu.Lock()
	merged := stats.NewRecorder()
	w := &query.Workload{}
	selSum := map[string]float64{}
	selCnt := map[string]int{}
	parts := map[string]*PartitionWindow{}
	sessions := map[string]*SessionWindow{}
	sessTables := map[string]map[string]int{}
	windowSeen := 0
	for _, ep := range m.ring {
		if ep == nil {
			continue
		}
		merged.Merge(ep.rec)
		w.Queries = append(w.Queries, ep.sample...)
		windowSeen += ep.seen
		for k, v := range ep.selSum {
			selSum[k] += v
		}
		for k, v := range ep.selCnt {
			selCnt[k] += v
		}
		for k, pc := range ep.parts {
			pw := parts[k]
			if pw == nil {
				pw = &PartitionWindow{}
				parts[k] = pw
			}
			pw.HotOps += pc.Hot
			pw.ColdOps += pc.Cold
			pw.BothOps += pc.Both
		}
		for name, sc := range ep.sessions {
			sw := sessions[name]
			if sw == nil {
				sw = &SessionWindow{Name: name}
				sessions[name] = sw
				sessTables[name] = map[string]int{}
			}
			sw.Queries += sc.Queries
			sw.OLAP += sc.OLAP
			sw.DML += sc.DML
			sw.Commits += sc.Commits
			sw.Aborts += sc.Aborts
			sw.Duration += sc.Duration
			for t, n := range sc.Tables {
				sessTables[name][t] += n
			}
		}
	}
	seen := m.seen
	m.mu.Unlock()

	snap := &Snapshot{Queries: w, Recorder: merged, Seen: seen, WindowSeen: windowSeen}
	for _, name := range merged.Tables() {
		ts := merged.Table(name)
		if ts == nil {
			continue
		}
		tw := TableWindow{Name: name, Ops: ts, AvgSelectivity: 1, Partitions: parts[name]}
		if tot := ts.TotalQueries(); tot > 0 {
			tw.OLAPFraction = float64(ts.Aggregations) / float64(tot)
		}
		if n := selCnt[name]; n > 0 {
			tw.AvgSelectivity = selSum[name] / float64(n)
		}
		for c, n := range ts.AttrPreds {
			if n > 0 || ts.AttrUpdates[c] > 0 || ts.AttrAggs[c] > 0 || ts.AttrGroupBys[c] > 0 {
				tw.TouchedCols = append(tw.TouchedCols, c)
			}
		}
		sort.Ints(tw.TouchedCols)
		if rows, err := m.db.Rows(name); err == nil {
			tw.Rows = rows
		}
		if delta, err := m.db.DeltaRows(name); err == nil {
			tw.DeltaRows = delta
		}
		snap.Tables = append(snap.Tables, tw)
	}
	sort.Slice(snap.Tables, func(i, j int) bool { return snap.Tables[i].Name < snap.Tables[j].Name })
	for name, sw := range sessions {
		for t := range sessTables[name] {
			sw.Tables = append(sw.Tables, t)
		}
		sort.Strings(sw.Tables)
		snap.Sessions = append(snap.Sessions, *sw)
	}
	sort.Slice(snap.Sessions, func(i, j int) bool { return snap.Sessions[i].Name < snap.Sessions[j].Name })
	return snap
}
