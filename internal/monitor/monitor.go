// Package monitor implements the live workload monitoring half of the
// online advisor (§4 of the paper): a Monitor attaches to the engine as
// its query observer, maintains rolling per-table — and, for
// horizontally partitioned tables, per-partition — workload statistics
// over a ring of epoch buckets, and produces point-in-time Snapshots
// carrying exactly the features the cost model consumes (operation mix,
// touched columns, predicate selectivities, row and delta-fragment
// counts) plus a bounded sample of the observed queries. The advisor's
// RecommendSnapshot entry point accepts these snapshots in place of
// parsed workload files; internal/migrate turns the resulting
// recommendations into background store migrations.
//
// The ring of epochs is what makes the statistics *rolling*: when the
// workload mix shifts, rotated-out epochs age the old mix out of the
// window instead of letting a long OLAP history forever outvote a new
// OLTP phase.
package monitor

import (
	"strings"
	"sync"
	"time"

	"hybridstore/internal/engine"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/stats"
	"hybridstore/internal/value"
)

// Config tunes the monitor's rolling window.
type Config struct {
	// Epochs is the number of buckets in the rolling window ring.
	Epochs int
	// RotateEvery rotates to a fresh bucket after this many observed
	// queries (0 keeps a single growing bucket until Rotate is called).
	RotateEvery int
	// SampleCap bounds the per-epoch query sample retained as the
	// representative workload.
	SampleCap int
}

// DefaultConfig returns the standard window shape: six buckets of 2000
// queries each, sampling up to 512 queries per bucket.
func DefaultConfig() Config {
	return Config{Epochs: 6, RotateEvery: 2000, SampleCap: 512}
}

// partCounts attributes operations of a horizontally partitioned table to
// its hot/cold sides by evaluating the query predicate's range on the
// split column — the same routing the engine performs.
type partCounts struct {
	Hot, Cold, Both int
}

// sessionCounts attributes one session's (or client's) operations within
// an epoch, so the advisor sees which tenants drive which mix.
type sessionCounts struct {
	Queries  int
	OLAP     int
	DML      int
	Commits  int
	Aborts   int
	Duration time.Duration
	Tables   map[string]int
}

// epoch is one bucket of the rolling window.
type epoch struct {
	rec    *stats.Recorder
	sample []*query.Query
	seen   int
	// selSum/selCnt accumulate estimated predicate selectivities per table.
	selSum map[string]float64
	selCnt map[string]int
	parts  map[string]*partCounts
	// sessions attributes the epoch's operations per session label
	// (statements executed without a session tag are not attributed).
	sessions map[string]*sessionCounts
}

func newEpoch() *epoch {
	return &epoch{
		rec:      stats.NewRecorder(),
		selSum:   map[string]float64{},
		selCnt:   map[string]int{},
		parts:    map[string]*partCounts{},
		sessions: map[string]*sessionCounts{},
	}
}

// Monitor observes a live engine and maintains the rolling window. It is
// safe for concurrent use: Observe is called from every query goroutine.
type Monitor struct {
	db  *engine.Database
	cfg Config

	mu   sync.Mutex
	ring []*epoch
	head int
	seen int

	// ingestRows counts rows applied through the bulk-ingest (COPY) fast
	// path per table, cumulatively. Consumers (the migrate manager's
	// adaptive compaction cadence) diff successive readings to get the
	// delta growth rate; keeping raw totals here means no reader's
	// window shape is baked into the monitor.
	ingestRows map[string]int64
}

// The planner consults the monitor for live selectivity feedback.
var _ engine.SelectivityHinter = (*Monitor)(nil)

// New attaches a monitor to a database as its query observer.
func New(db *engine.Database, cfg Config) *Monitor {
	if cfg.Epochs <= 0 {
		cfg.Epochs = DefaultConfig().Epochs
	}
	if cfg.SampleCap <= 0 {
		cfg.SampleCap = DefaultConfig().SampleCap
	}
	m := &Monitor{db: db, cfg: cfg, ring: make([]*epoch, cfg.Epochs), ingestRows: map[string]int64{}}
	m.ring[0] = newEpoch()
	db.SetObserver(m)
	return m
}

// sampleTrimRows bounds the insert payload retained in the workload
// sample: the cost model only consumes len(q.Rows), so bulk-insert row
// values would be pinned for the whole window as dead weight.
const sampleTrimRows = 64

// sampleQuery returns the query as retained in the window sample —
// verbatim, except that large insert batches keep their row count but
// drop the row values.
func sampleQuery(q *query.Query) *query.Query {
	if q.Kind != query.Insert || len(q.Rows) <= sampleTrimRows {
		return q
	}
	cp := *q
	cp.Rows = make([][]value.Value, len(q.Rows))
	return &cp
}

// Observe implements engine.QueryObserver.
func (m *Monitor) Observe(q *query.Query, d time.Duration) {
	m.ObserveSession("", q, d)
}

// ObserveTxn implements engine.TxnObserver: explicit transaction
// completions are attributed to their session, so the window shows
// which tenants commit and which churn through aborts.
func (m *Monitor) ObserveTxn(session string, committed bool) {
	if session == "" {
		return
	}
	m.mu.Lock()
	ep := m.ring[m.head]
	sc := ep.sessions[session]
	if sc == nil {
		sc = &sessionCounts{Tables: map[string]int{}}
		ep.sessions[session] = sc
	}
	if committed {
		sc.Commits++
	} else {
		sc.Aborts++
	}
	m.mu.Unlock()
}

// ObserveSession implements engine.SessionObserver: the statement is
// folded into the window as usual and additionally attributed to the
// given session label (empty = unattributed).
func (m *Monitor) ObserveSession(session string, q *query.Query, d time.Duration) {
	m.mu.Lock()
	ep := m.ring[m.head]
	ep.rec.Observe(q, d)
	ep.seen++
	m.seen++
	if len(ep.sample) < m.cfg.SampleCap {
		ep.sample = append(ep.sample, sampleQuery(q))
	} else {
		// Deterministic stride replacement keeps the sample representative
		// without unbounded memory.
		ep.sample[ep.seen%m.cfg.SampleCap] = sampleQuery(q)
	}
	m.observeExtrasLocked(ep, q)
	if session != "" {
		sc := ep.sessions[session]
		if sc == nil {
			sc = &sessionCounts{Tables: map[string]int{}}
			ep.sessions[session] = sc
		}
		sc.Queries++
		sc.Duration += d
		if q.IsOLAP() {
			sc.OLAP++
		}
		if q.Kind == query.Insert || q.Kind == query.Update || q.Kind == query.Delete {
			sc.DML++
		}
		for _, t := range q.Tables() {
			sc.Tables[strings.ToLower(t)]++
		}
	}
	if m.cfg.RotateEvery > 0 && ep.seen >= m.cfg.RotateEvery {
		m.rotateLocked()
	}
	m.mu.Unlock()
}

// observeExtrasLocked records the per-table selectivity estimate and the
// per-partition attribution for horizontally partitioned tables.
func (m *Monitor) observeExtrasLocked(ep *epoch, q *query.Query) {
	key := strings.ToLower(q.Table)
	entry := m.db.Catalog().Table(key)
	if entry == nil {
		return
	}
	if q.Pred != nil && entry.Stats != nil {
		ep.selSum[key] += expr.EstimateSelectivity(q.Pred, entry.Stats)
		ep.selCnt[key]++
	}
	spec := entry.Partitioning
	if spec == nil || spec.Horizontal == nil {
		return
	}
	pc := ep.parts[key]
	if pc == nil {
		pc = &partCounts{}
		ep.parts[key] = pc
	}
	hot, cold := routeSides(q, spec.Horizontal.SplitCol, spec.Horizontal.SplitVal)
	switch {
	case hot && cold:
		pc.Both++
	case hot:
		pc.Hot++
	case cold:
		pc.Cold++
	}
}

// routeSides mirrors the engine's horizontal routing: which partitions can
// the query touch?
func routeSides(q *query.Query, splitCol int, splitVal value.Value) (hot, cold bool) {
	if q.Kind == query.Insert {
		for _, row := range q.Rows {
			if splitCol < len(row) && !row[splitCol].IsNull() && value.Compare(row[splitCol], splitVal) >= 0 {
				hot = true
			} else {
				cold = true
			}
		}
		return
	}
	hot, cold = true, true
	rg, ok := expr.RangeOn(q.Pred, splitCol)
	if !ok {
		return
	}
	if rg.Hi != nil && value.Compare(*rg.Hi, splitVal) < 0 {
		hot = false
	}
	if rg.Lo != nil && value.Compare(*rg.Lo, splitVal) >= 0 {
		cold = false
	}
	return
}

// Rotate manually advances the window to a fresh epoch, dropping the
// oldest bucket once the ring is full.
func (m *Monitor) Rotate() {
	m.mu.Lock()
	m.rotateLocked()
	m.mu.Unlock()
}

func (m *Monitor) rotateLocked() {
	m.head = (m.head + 1) % len(m.ring)
	m.ring[m.head] = newEpoch()
}

// AvgSelectivity returns the mean estimated predicate selectivity of the
// observed window's reads against table, and whether any were observed.
// It implements engine.SelectivityHinter: the planner consults it for
// tables without collected statistics, closing the loop between the
// live workload window and plan costing. Lock order is safe — nothing
// holding m.mu acquires the engine lock.
func (m *Monitor) AvgSelectivity(table string) (float64, bool) {
	key := strings.ToLower(table)
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum float64
	var cnt int
	for _, ep := range m.ring {
		if ep == nil {
			continue
		}
		sum += ep.selSum[key]
		cnt += ep.selCnt[key]
	}
	if cnt == 0 {
		return 0, false
	}
	return sum / float64(cnt), true
}

// ObserveIngest implements engine.IngestObserver: every bulk-ingest
// (COPY) batch reports its row count here. Ingest rows land directly in
// a table's write-optimized delta, so their rate is the signal the
// adaptive delta-merge cadence runs on.
func (m *Monitor) ObserveIngest(table string, rows int) {
	m.mu.Lock()
	m.ingestRows[strings.ToLower(table)] += int64(rows)
	m.mu.Unlock()
}

// IngestRows returns a copy of the cumulative per-table bulk-ingest row
// counts. Diff two readings to get a growth rate.
func (m *Monitor) IngestRows() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.ingestRows))
	for t, n := range m.ingestRows {
		out[t] = n
	}
	return out
}

// Seen returns the total number of observed queries.
func (m *Monitor) Seen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seen
}

// Reset clears the whole window.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ring = make([]*epoch, m.cfg.Epochs)
	m.head = 0
	m.ring[0] = newEpoch()
	m.seen = 0
	m.ingestRows = map[string]int64{}
}
