package monitor

import (
	"testing"
	"time"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// The monitoring-overhead benchmarks measure the cost the live workload
// monitor adds to the hot query path (target: <2%). Run both and compare:
//
//	go test ./internal/monitor -bench Overhead -benchtime 2s
//
// BenchmarkScanBare is the baseline (no observer attached);
// BenchmarkScanMonitored runs the identical scan with the monitor
// observing every query. BenchmarkObserve isolates the per-query
// recording cost itself.
func benchEngine(b *testing.B, rows int) *engine.Database {
	b.Helper()
	db := engine.New()
	if err := db.CreateTable(benchSchema(), catalog.ColumnStore); err != nil {
		b.Fatal(err)
	}
	batch := make([][]value.Value, 0, rows)
	for i := 0; i < rows; i++ {
		batch = append(batch, []value.Value{
			value.NewBigint(int64(i)), value.NewInt(int64(i % 50)), value.NewDouble(float64(i % 1000)),
		})
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "bench", Rows: batch}); err != nil {
		b.Fatal(err)
	}
	if err := db.Compact("bench"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.CollectStats("bench"); err != nil {
		b.Fatal(err)
	}
	return db
}

func benchSchema() *schema.Table {
	return schema.MustNew("bench", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "grp", Type: value.Integer},
		{Name: "amount", Type: value.Double},
	}, "id")
}

// scanQuery is a selective aggregate — the hot analytical path whose
// latency the monitor must not disturb.
func scanQuery() *query.Query {
	return &query.Query{
		Kind: query.Aggregate, Table: "bench",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}},
		Pred: &expr.Comparison{Col: 1, Op: expr.Lt, Val: value.NewInt(25)},
	}
}

func runScans(b *testing.B, db *engine.Database) {
	q := scanQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanOverheadBare(b *testing.B) {
	db := benchEngine(b, 100000)
	runScans(b, db)
}

func BenchmarkScanOverheadMonitored(b *testing.B) {
	db := benchEngine(b, 100000)
	New(db, DefaultConfig())
	runScans(b, db)
}

// noopObs isolates the engine's observer-dispatch cost from the
// monitor's recording cost.
type noopObs struct{}

func (noopObs) Observe(q *query.Query, d time.Duration) {}

func BenchmarkScanOverheadNoopObserver(b *testing.B) {
	db := benchEngine(b, 100000)
	db.SetObserver(noopObs{})
	runScans(b, db)
}

// BenchmarkObserve isolates the monitor's per-query recording cost.
func BenchmarkObserve(b *testing.B) {
	db := benchEngine(b, 1000)
	m := New(db, DefaultConfig())
	q := scanQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(q, 0)
	}
}
