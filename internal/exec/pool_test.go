package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridstore/internal/trace"
)

func TestMorselsCoversAll(t *testing.T) {
	for _, size := range []int{1, 2, 4, 8} {
		p := NewPool(size)
		c := &Ctx{Pool: p}
		const n = 1000
		var hits [n]atomic.Int32
		var maxWorker atomic.Int32
		c.Morsels(n, func(w, m int) bool {
			hits[m].Add(1)
			for {
				cur := maxWorker.Load()
				if int32(w) <= cur || maxWorker.CompareAndSwap(cur, int32(w)) {
					break
				}
			}
			return true
		})
		for m := range hits {
			if got := hits[m].Load(); got != 1 {
				t.Fatalf("size=%d morsel %d ran %d times", size, m, got)
			}
		}
		if int(maxWorker.Load()) >= size {
			t.Fatalf("size=%d saw worker id %d", size, maxWorker.Load())
		}
	}
}

func TestMorselsNilCtxSerial(t *testing.T) {
	var c *Ctx
	seen := 0
	c.Morsels(10, func(w, m int) bool {
		if w != 0 || m != seen {
			t.Fatalf("nil ctx: got worker %d morsel %d, want 0 %d", w, m, seen)
		}
		seen++
		return true
	})
	if seen != 10 {
		t.Fatalf("nil ctx ran %d morsels, want 10", seen)
	}
}

func TestMorselsStopsOnFalse(t *testing.T) {
	c := &Ctx{Pool: NewPool(4)}
	var ran atomic.Int32
	c.Morsels(10000, func(w, m int) bool {
		return ran.Add(1) < 5
	})
	// All workers finish their current morsel after the stop flag, so a
	// few extra invocations are fine — but not the whole range.
	if n := ran.Load(); n < 5 || n > 50 {
		t.Fatalf("ran %d morsels after early stop", n)
	}
}

func TestMorselsHonorsStopHook(t *testing.T) {
	stopped := atomic.Bool{}
	c := &Ctx{Pool: NewPool(2), Stop: stopped.Load}
	var ran atomic.Int32
	c.Morsels(1000, func(w, m int) bool {
		if ran.Add(1) == 3 {
			stopped.Store(true)
		}
		return true
	})
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("stop hook ignored: ran all %d morsels", n)
	}
}

func TestAcquireBlocksAndCtxCancels(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", p.InUse())
	}
	if p.TryAcquire() {
		t.Fatal("TryAcquire succeeded on a full pool")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Acquire(ctx); err == nil {
		t.Fatal("Acquire returned nil on a full pool with expiring ctx")
	}
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("TryAcquire failed on a free pool")
	}
	p.Release()
}

func TestDoRunsAll(t *testing.T) {
	c := &Ctx{Pool: NewPool(4)}
	var mu sync.Mutex
	got := map[int]bool{}
	mark := func(i int) func() {
		return func() {
			mu.Lock()
			got[i] = true
			mu.Unlock()
		}
	}
	c.Do(mark(0), mark(1), mark(2))
	if len(got) != 3 {
		t.Fatalf("Do ran %d of 3 fns", len(got))
	}
}

func TestHelpersNeverExceedPool(t *testing.T) {
	p := NewPool(3)
	c := &Ctx{Pool: p}
	var cur, peak atomic.Int32
	c.Morsels(200, func(w, m int) bool {
		n := cur.Add(1)
		for {
			pk := peak.Load()
			if n <= pk || peak.CompareAndSwap(pk, n) {
				break
			}
		}
		time.Sleep(20 * time.Microsecond)
		cur.Add(-1)
		return true
	})
	if peak.Load() > 3 {
		t.Fatalf("peak concurrency %d exceeds pool size 3", peak.Load())
	}
}

func TestPoolStats(t *testing.T) {
	p := NewPool(1)
	st := p.Stats()
	if st.Size != 1 || st.InUse != 0 || st.Queued != 0 || st.Done != 0 || st.PeakQueued != 0 {
		t.Fatalf("fresh pool stats = %+v", st)
	}
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.InUse != 1 {
		t.Fatalf("InUse = %d after acquire, want 1", st.InUse)
	}

	// Second acquirer must show up as queued while the slot is held.
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(started)
		if err := p.Acquire(context.Background()); err == nil {
			p.Release()
		}
		close(done)
	}()
	<-started
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never counted as queued")
		}
		time.Sleep(time.Millisecond)
	}
	if st := p.Stats(); st.PeakQueued < 1 {
		t.Fatalf("PeakQueued = %d, want >= 1", st.PeakQueued)
	}
	p.Release()
	<-done
	st = p.Stats()
	if st.Done != 2 {
		t.Fatalf("Done = %d after two releases, want 2", st.Done)
	}
	if st.Queued != 0 {
		t.Fatalf("Queued = %d after drain, want 0", st.Queued)
	}
}

func TestPoolStatsQueuedClearsOnCancel(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- p.Acquire(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never counted as queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled Acquire returned nil")
	}
	if st := p.Stats(); st.Queued != 0 {
		t.Fatalf("Queued = %d after cancelled acquire, want 0", st.Queued)
	}
	p.Release()
}

func TestMorselsTraceCollection(t *testing.T) {
	tr := trace.New()
	c := &Ctx{Pool: NewPool(4), Trace: tr}
	const n = 64
	var ran atomic.Int32
	c.Morsels(n, func(w, m int) bool {
		ran.Add(1)
		time.Sleep(10 * time.Microsecond)
		return true
	})
	morsels, runs := tr.Morsels()
	if morsels != n || runs != 1 {
		t.Fatalf("trace morsels = %d runs = %d, want %d/1", morsels, runs, n)
	}
	busy := tr.WorkerBusy()
	if len(busy) == 0 {
		t.Fatal("no worker busy time recorded")
	}
	for _, wb := range busy {
		if wb.Busy <= 0 {
			t.Fatalf("worker %d busy = %v, want > 0", wb.Worker, wb.Busy)
		}
	}
}
