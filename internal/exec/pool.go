// Package exec provides the process-wide query-execution worker pool and
// the morsel-driven parallel loop the storage layers run scans and
// aggregations on.
//
// The pool is a fixed set of slots (default GOMAXPROCS) shared by two
// kinds of work: statement admission (the network server blocks one slot
// per executing statement) and intra-query helpers (a parallel scan
// try-acquires extra slots for additional workers). Helpers never block —
// when no slot is free the caller simply does the work on its own
// goroutine — so sharing one pool between admission control and morsel
// parallelism cannot deadlock, and the total number of goroutines doing
// query work stays bounded by the pool size: a lone analytical query
// fans out across every core, while a saturated server runs one statement
// per slot with no oversubscription.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hybridstore/internal/trace"
)

// Pool is a bounded set of execution slots.
//
// The pool distinguishes three task states so observers (and drain
// logic) can tell them apart: queued (blocked in Acquire waiting for a
// slot), running (holding a slot) and done (cumulative completed slot
// holds). Before these counters existed the queue depth was
// unobservable — a goroutine parked in Acquire was indistinguishable
// from one actively running, so a saturated pool and an idle one with
// a long admission queue reported the same InUse.
type Pool struct {
	size  int
	slots chan struct{}

	queued     atomic.Int64 // goroutines blocked in Acquire
	done       atomic.Int64 // cumulative released slot holds
	peakQueued atomic.Int64 // high-water mark of queued
}

// PoolStats is a point-in-time view of pool activity.
type PoolStats struct {
	Size       int   // configured slots
	InUse      int   // slots currently held (running tasks + helpers)
	Queued     int   // goroutines blocked in Acquire right now
	Done       int64 // cumulative completed slot holds
	PeakQueued int64 // high-water mark of Queued since pool creation
}

// Stats returns current pool activity counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Size:       p.size,
		InUse:      len(p.slots),
		Queued:     int(p.queued.Load()),
		Done:       p.done.Load(),
		PeakQueued: p.peakQueued.Load(),
	}
}

// NewPool creates a pool with n slots; n <= 0 means GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{size: n, slots: make(chan struct{}, n)}
}

// Size returns the number of slots.
func (p *Pool) Size() int { return p.size }

// InUse returns the number of currently held slots (admission +
// in-flight helper workers); a value at Size means the pool is
// saturated.
func (p *Pool) InUse() int { return len(p.slots) }

// Acquire blocks until a slot is free (statement admission) or ctx is
// done, returning ctx.Err() in the latter case. While blocked the
// caller counts as queued in Stats.
func (p *Pool) Acquire(ctx context.Context) error {
	// Fast path: a free slot means no queueing at all.
	select {
	case p.slots <- struct{}{}:
		return nil
	default:
	}
	q := p.queued.Add(1)
	for {
		peak := p.peakQueued.Load()
		if q <= peak || p.peakQueued.CompareAndSwap(peak, q) {
			break
		}
	}
	defer p.queued.Add(-1)
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire grabs a slot only if one is free. Intra-query helpers use
// it so parallel loops degrade to inline execution instead of blocking.
func (p *Pool) TryAcquire() bool {
	select {
	case p.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by Acquire or TryAcquire and counts the
// completed hold toward Stats().Done.
func (p *Pool) Release() {
	<-p.slots
	p.done.Add(1)
}

var (
	defaultMu   sync.Mutex
	defaultSize int
	defaultPool *Pool
)

// Default returns the shared process-wide pool, creating it on first use
// (GOMAXPROCS slots unless SetDefaultSize ran first).
func Default() *Pool {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultPool == nil {
		defaultPool = NewPool(defaultSize)
	}
	return defaultPool
}

// SetDefaultSize sizes the default pool (0 = GOMAXPROCS). Commands call
// it at startup from their -workers flag, before any query runs; calling
// it later replaces the pool for future Default() callers only.
func SetDefaultSize(n int) {
	defaultMu.Lock()
	defaultPool = NewPool(n)
	defaultMu.Unlock()
}

// Ctx carries one statement's execution resources through the storage
// layers: the pool its morsel loops may draw helper workers from and the
// cooperative cancellation hook derived from the statement context. A
// nil Ctx (or nil Pool) means serial execution with no cancellation —
// every method is nil-receiver safe.
type Ctx struct {
	Pool *Pool
	// Stop is polled at batch boundaries (roughly every 1024 rows); a
	// true return abandons the work and the partial result must be
	// discarded.
	Stop func() bool
	// Trace, when non-nil, collects morsel counts and per-worker busy
	// time from parallel loops. Nil (the default) keeps Morsels on its
	// uninstrumented fast path.
	Trace *trace.Trace
}

// Serial returns a Ctx that executes serially but still honors the given
// cancellation hook.
func Serial(stop func() bool) *Ctx { return &Ctx{Stop: stop} }

// Tracer returns the Ctx's trace (nil for a nil Ctx or an untraced
// statement) so storage layers can report counters nil-safely.
func (c *Ctx) Tracer() *trace.Trace {
	if c == nil {
		return nil
	}
	return c.Trace
}

// Stopped reports whether the statement has been cancelled.
func (c *Ctx) Stopped() bool {
	return c != nil && c.Stop != nil && c.Stop()
}

// StopHook returns the raw cancellation hook (nil for a nil Ctx), for
// handing to serial code paths that take a stop func directly.
func (c *Ctx) StopHook() func() bool {
	if c == nil {
		return nil
	}
	return c.Stop
}

// Workers returns the maximum number of workers a Morsels(n, ...) loop
// may use (including the caller); callers size per-worker state with it.
func (c *Ctx) Workers(n int) int {
	if c == nil || c.Pool == nil || n < 1 {
		return 1
	}
	if s := c.Pool.Size(); s < n {
		n = s
	}
	if n < 1 {
		return 1
	}
	return n
}

// Parallel reports whether a Morsels loop over n morsels could use more
// than one worker; callers use it to skip building mergeable per-worker
// state when execution is serial anyway.
func (c *Ctx) Parallel(n int) bool { return c.Workers(n) > 1 }

// Morsels runs fn(worker, morsel) for every morsel in [0, n), claiming
// morsels from a shared counter. The calling goroutine is always worker
// 0; up to Workers(n)-1 helpers are try-acquired from the pool and get
// worker ids 1..k, so per-worker state indexed by the worker id is never
// shared. fn returning false — or Stop reporting cancellation, polled
// before every claim — stops all workers after their current morsel.
// fn must be safe for concurrent calls with distinct worker ids.
func (c *Ctx) Morsels(n int, fn func(worker, morsel int) bool) {
	if n <= 0 {
		return
	}
	workers := c.Workers(n)
	var stop func() bool
	var tr *trace.Trace
	if c != nil {
		stop = c.Stop
		tr = c.Trace
	}
	if tr != nil {
		// Tracing wraps fn to count processed morsels and times each
		// worker. The wrapper exists only on traced statements, so the
		// untraced hot path below runs the raw fn with zero additions.
		var processed atomic.Int64
		inner := fn
		fn = func(worker, morsel int) bool {
			processed.Add(1)
			return inner(worker, morsel)
		}
		defer func() { tr.AddMorselRun(processed.Load(), workers) }()
	}
	if workers <= 1 {
		start := time.Time{}
		if tr != nil {
			start = time.Now()
		}
		for m := 0; m < n; m++ {
			if stop != nil && stop() {
				break
			}
			if !fn(0, m) {
				break
			}
		}
		if tr != nil {
			tr.AddWorkerBusy(0, time.Since(start))
		}
		return
	}
	var (
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
	)
	run := func(worker int) {
		start := time.Time{}
		if tr != nil {
			start = time.Now()
		}
		for {
			if stopped.Load() || (stop != nil && stop()) {
				break
			}
			m := int(next.Add(1)) - 1
			if m >= n {
				break
			}
			if !fn(worker, m) {
				stopped.Store(true)
				break
			}
		}
		if tr != nil {
			tr.AddWorkerBusy(worker, time.Since(start))
		}
	}
	for w := 1; w < workers; w++ {
		if !c.Pool.TryAcquire() {
			break // pool saturated: remaining morsels run on fewer workers
		}
		wg.Add(1)
		go func(worker int) {
			defer func() {
				c.Pool.Release()
				wg.Done()
			}()
			run(worker)
		}(w)
	}
	run(0)
	wg.Wait()
}

// Do runs the given independent functions, on helper workers where the
// pool allows (overflow runs on the caller). It is the partition fan-out
// primitive: each fn must touch disjoint state.
func (c *Ctx) Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	c.Morsels(len(fns), func(_, m int) bool {
		fns[m]()
		return true
	})
}
