package query

import (
	"reflect"
	"strings"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/value"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Aggregate: "AGGREGATE", Select: "SELECT", Insert: "INSERT",
		Update: "UPDATE", Delete: "DELETE",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
}

func TestIsOLAP(t *testing.T) {
	if !(&Query{Kind: Aggregate}).IsOLAP() {
		t.Error("aggregate should be OLAP")
	}
	for _, k := range []Kind{Select, Insert, Update, Delete} {
		if (&Query{Kind: k}).IsOLAP() {
			t.Errorf("%v should be OLTP", k)
		}
	}
}

func TestSetColsSorted(t *testing.T) {
	q := &Query{Kind: Update, Set: map[int]value.Value{
		5: value.NewInt(1), 1: value.NewInt(2), 3: value.NewInt(3),
	}}
	if got := q.SetCols(); !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Errorf("SetCols = %v", got)
	}
	if q.NumAffectedCols() != 3 {
		t.Errorf("NumAffectedCols = %d", q.NumAffectedCols())
	}
}

func TestTables(t *testing.T) {
	q := &Query{Kind: Aggregate, Table: "fact"}
	if got := q.Tables(); !reflect.DeepEqual(got, []string{"fact"}) {
		t.Errorf("Tables = %v", got)
	}
	q.Join = &Join{Table: "dim"}
	if got := q.Tables(); !reflect.DeepEqual(got, []string{"fact", "dim"}) {
		t.Errorf("Tables with join = %v", got)
	}
}

func TestValidate(t *testing.T) {
	good := []*Query{
		{Kind: Aggregate, Table: "t", Aggs: []agg.Spec{{Func: agg.Sum, Col: 0}}},
		{Kind: Select, Table: "t"},
		{Kind: Insert, Table: "t", Rows: [][]value.Value{{value.NewInt(1)}}},
		{Kind: Update, Table: "t", Set: map[int]value.Value{0: value.NewInt(1)}},
		{Kind: Delete, Table: "t"},
	}
	for i, q := range good {
		if err := q.Validate(); err != nil {
			t.Errorf("good query %d rejected: %v", i, err)
		}
	}
	bad := []*Query{
		{Kind: Select},
		{Kind: Aggregate, Table: "t"},
		{Kind: Insert, Table: "t"},
		{Kind: Insert, Table: "t", Rows: [][]value.Value{{}}, Join: &Join{Table: "x"}},
		{Kind: Update, Table: "t"},
		{Kind: Update, Table: "t", Set: map[int]value.Value{0: value.NewInt(1)}, Join: &Join{Table: "x"}},
		{Kind: Delete, Table: "t", Join: &Join{Table: "x"}},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestString(t *testing.T) {
	q := &Query{
		Kind:    Aggregate,
		Table:   "sales",
		Aggs:    []agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Avg, Col: 3}},
		GroupBy: []int{1},
		Pred:    &expr.Comparison{Col: 0, Op: expr.Gt, Val: value.NewInt(5)},
	}
	s := q.String()
	for _, frag := range []string{"SUM(col2)", "AVG(col3)", "FROM sales", "WHERE", "GROUP BY col1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
	sel := &Query{Kind: Select, Table: "t", Cols: []int{0, 2}, Limit: 5}
	if s := sel.String(); !strings.Contains(s, "col0, col2") || !strings.Contains(s, "LIMIT 5") {
		t.Errorf("select String = %s", s)
	}
	selAll := &Query{Kind: Select, Table: "t"}
	if !strings.Contains(selAll.String(), "SELECT *") {
		t.Errorf("select-all String = %s", selAll.String())
	}
	ins := &Query{Kind: Insert, Table: "t", Rows: make([][]value.Value, 3)}
	if !strings.Contains(ins.String(), "3 rows") {
		t.Errorf("insert String = %s", ins.String())
	}
	upd := &Query{Kind: Update, Table: "t", Set: map[int]value.Value{1: value.NewInt(0)}, Pred: expr.True{}}
	if !strings.Contains(upd.String(), "UPDATE t") {
		t.Errorf("update String = %s", upd.String())
	}
	del := &Query{Kind: Delete, Table: "t", Pred: expr.True{}}
	if !strings.Contains(del.String(), "DELETE FROM t") {
		t.Errorf("delete String = %s", del.String())
	}
	jq := &Query{Kind: Select, Table: "a", Join: &Join{Table: "b", LeftCol: 1, RightCol: 0}}
	if !strings.Contains(jq.String(), "JOIN b") {
		t.Errorf("join String = %s", jq.String())
	}
}

func TestWorkload(t *testing.T) {
	w := &Workload{}
	w.Add(
		&Query{Kind: Aggregate, Table: "b"},
		&Query{Kind: Select, Table: "a"},
		&Query{Kind: Insert, Table: "a"},
		&Query{Kind: Aggregate, Table: "a", Join: &Join{Table: "c"}},
	)
	if w.Len() != 4 {
		t.Errorf("Len = %d", w.Len())
	}
	if got := w.OLAPFraction(); got != 0.5 {
		t.Errorf("OLAPFraction = %v", got)
	}
	if got := w.Tables(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Tables = %v", got)
	}
	empty := &Workload{}
	if empty.OLAPFraction() != 0 {
		t.Error("empty workload OLAP fraction")
	}
}
