// Package query defines the logical query model of the engine and the
// workload abstraction the storage advisor analyzes. A Query carries
// exactly the "query characteristics" the paper's cost model consumes:
// the query type, the aggregates and their functions, the grouping, the
// predicate (selectivity, referenced attributes), the affected columns of
// updates and the joined tables.
package query

import (
	"fmt"
	"strings"

	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/value"
)

// Kind is the query type; the paper's cost model picks base costs by it.
type Kind uint8

const (
	// Aggregate is an OLAP aggregation query (SUM/AVG/... with optional
	// GROUP BY and WHERE).
	Aggregate Kind = iota
	// Select is an OLTP point or range selection returning tuples.
	Select
	// Insert appends new tuples.
	Insert
	// Update modifies attribute values of matching tuples.
	Update
	// Delete removes matching tuples.
	Delete
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Aggregate:
		return "AGGREGATE"
	case Select:
		return "SELECT"
	case Insert:
		return "INSERT"
	case Update:
		return "UPDATE"
	case Delete:
		return "DELETE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Join describes an equi-join with a second table. When a query has a
// join, all column indexes in Aggs, GroupBy, Cols and Pred refer to the
// combined row: the left table's columns first (0..nL-1), then the right
// table's (nL..nL+nR-1). LeftCol indexes the left schema; RightCol indexes
// the right schema locally.
type Join struct {
	Table    string
	LeftCol  int
	RightCol int
}

// Order is one ORDER BY key: a column index (combined indexing for
// joins) and a direction.
type Order struct {
	Col  int
	Desc bool
}

// String renders the key as "colN [DESC]".
func (o Order) String() string {
	if o.Desc {
		return fmt.Sprintf("col%d DESC", o.Col)
	}
	return fmt.Sprintf("col%d", o.Col)
}

// Query is one logical statement against the database.
type Query struct {
	Kind  Kind
	Table string

	// Aggregation (Kind == Aggregate).
	Aggs    []agg.Spec
	GroupBy []int

	// Selection (Kind == Select); nil Cols selects every column.
	Cols  []int
	Limit int

	// OrderBy sorts the result rows (Select: any table columns;
	// Aggregate: must be group-by columns). LIMIT applies after the sort,
	// and NULLs order first ascending.
	OrderBy []Order

	// Filter for Aggregate/Select/Update/Delete.
	Pred expr.Predicate

	// Optional equi-join for Aggregate/Select.
	Join *Join

	// Insert payload (Kind == Insert).
	Rows [][]value.Value

	// Update assignments (Kind == Update): column index -> new value.
	Set map[int]value.Value
}

// NumAffectedCols returns the number of assigned columns of an update.
func (q *Query) NumAffectedCols() int { return len(q.Set) }

// SetCols returns the sorted assigned column indexes of an update.
func (q *Query) SetCols() []int {
	cols := make([]int, 0, len(q.Set))
	for c := range q.Set {
		cols = append(cols, c)
	}
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && cols[j] < cols[j-1]; j-- {
			cols[j], cols[j-1] = cols[j-1], cols[j]
		}
	}
	return cols
}

// IsOLAP reports whether the query is analytical (an aggregation); every
// other kind counts as OLTP in the paper's workload mixes.
func (q *Query) IsOLAP() bool { return q.Kind == Aggregate }

// Tables returns the referenced table names (1 or 2).
func (q *Query) Tables() []string {
	if q.Join != nil {
		return []string{q.Table, q.Join.Table}
	}
	return []string{q.Table}
}

// String renders a compact SQL-like description.
func (q *Query) String() string {
	var b strings.Builder
	switch q.Kind {
	case Aggregate:
		b.WriteString("SELECT ")
		for i, s := range q.Aggs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.String())
		}
		fmt.Fprintf(&b, " FROM %s", q.Table)
		if q.Join != nil {
			fmt.Fprintf(&b, " JOIN %s ON l.col%d = r.col%d", q.Join.Table, q.Join.LeftCol, q.Join.RightCol)
		}
		if q.Pred != nil {
			fmt.Fprintf(&b, " WHERE %s", q.Pred)
		}
		if len(q.GroupBy) > 0 {
			b.WriteString(" GROUP BY ")
			for i, c := range q.GroupBy {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "col%d", c)
			}
		}
		writeOrderBy(&b, q.OrderBy)
	case Select:
		b.WriteString("SELECT ")
		if q.Cols == nil {
			b.WriteString("*")
		} else {
			for i, c := range q.Cols {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "col%d", c)
			}
		}
		fmt.Fprintf(&b, " FROM %s", q.Table)
		if q.Join != nil {
			fmt.Fprintf(&b, " JOIN %s ON l.col%d = r.col%d", q.Join.Table, q.Join.LeftCol, q.Join.RightCol)
		}
		if q.Pred != nil {
			fmt.Fprintf(&b, " WHERE %s", q.Pred)
		}
		writeOrderBy(&b, q.OrderBy)
		if q.Limit > 0 {
			fmt.Fprintf(&b, " LIMIT %d", q.Limit)
		}
	case Insert:
		fmt.Fprintf(&b, "INSERT INTO %s (%d rows)", q.Table, len(q.Rows))
	case Update:
		fmt.Fprintf(&b, "UPDATE %s SET %d columns", q.Table, len(q.Set))
		if q.Pred != nil {
			fmt.Fprintf(&b, " WHERE %s", q.Pred)
		}
	case Delete:
		fmt.Fprintf(&b, "DELETE FROM %s", q.Table)
		if q.Pred != nil {
			fmt.Fprintf(&b, " WHERE %s", q.Pred)
		}
	}
	return b.String()
}

func writeOrderBy(b *strings.Builder, order []Order) {
	for i, o := range order {
		if i == 0 {
			b.WriteString(" ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(o.String())
	}
}

// Validate performs structural checks (kind-specific required fields).
func (q *Query) Validate() error {
	if q.Table == "" {
		return fmt.Errorf("query: no table")
	}
	if len(q.OrderBy) > 0 && q.Kind != Select && q.Kind != Aggregate {
		return fmt.Errorf("query: ORDER BY is only valid on SELECT queries")
	}
	switch q.Kind {
	case Aggregate:
		if len(q.Aggs) == 0 {
			return fmt.Errorf("query: aggregate without aggregates")
		}
		for _, o := range q.OrderBy {
			if !containsCol(q.GroupBy, o.Col) {
				return fmt.Errorf("query: ORDER BY column %d of an aggregate must be grouped", o.Col)
			}
		}
	case Insert:
		if len(q.Rows) == 0 {
			return fmt.Errorf("query: insert without rows")
		}
		if q.Join != nil {
			return fmt.Errorf("query: insert cannot join")
		}
	case Update:
		if len(q.Set) == 0 {
			return fmt.Errorf("query: update without assignments")
		}
		if q.Join != nil {
			return fmt.Errorf("query: update cannot join")
		}
	case Delete:
		if q.Join != nil {
			return fmt.Errorf("query: delete cannot join")
		}
	}
	return nil
}

func containsCol(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Workload is a sequence of queries; the advisor estimates its total
// runtime under candidate storage layouts.
type Workload struct {
	Queries []*Query
}

// Add appends queries.
func (w *Workload) Add(qs ...*Query) { w.Queries = append(w.Queries, qs...) }

// Len returns the number of queries.
func (w *Workload) Len() int { return len(w.Queries) }

// OLAPFraction returns the fraction of analytical queries.
func (w *Workload) OLAPFraction() float64 {
	if len(w.Queries) == 0 {
		return 0
	}
	n := 0
	for _, q := range w.Queries {
		if q.IsOLAP() {
			n++
		}
	}
	return float64(n) / float64(len(w.Queries))
}

// Tables returns the sorted set of tables referenced by the workload.
func (w *Workload) Tables() []string {
	seen := map[string]struct{}{}
	var out []string
	for _, q := range w.Queries {
		for _, t := range q.Tables() {
			k := strings.ToLower(t)
			if _, ok := seen[k]; !ok {
				seen[k] = struct{}{}
				out = append(out, t)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
