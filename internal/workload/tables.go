// Package workload generates the synthetic tables and query mixes of the
// paper's evaluation (§5): the 30-attribute experiment table (ID,
// keyfigures, filter and group-by attributes), the star schema for the
// join experiments, the OLAP-setting and OLTP-setting tables for the
// vertical-partitioning experiments, and parameterized OLAP/OLTP workload
// mixes over them.
package workload

import (
	"fmt"
	"math/rand"

	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// TableSpec describes a generated table: its schema, the roles of its
// columns and a deterministic row generator.
type TableSpec struct {
	Schema *schema.Table

	// Column roles (indexes into the schema).
	Keyfigures []int // numeric attributes for aggregation
	GroupBys   []int // low-cardinality attributes for grouping
	Filters    []int // attributes used in predicates
	OLTPAttrs  []int // frequently updated status-like attributes

	// RowGen produces the row with primary key id.
	RowGen func(rng *rand.Rand, id int64) []value.Value
}

// Load creates the table in db with the given store and fills it with n
// deterministic rows (ids 0..n-1).
func (ts *TableSpec) Load(db *engine.Database, store catalog.StoreKind, n int, seed int64) error {
	return ts.LoadLayout(db, store, nil, n, seed)
}

// LoadLayout is Load with an explicit partitioning layout.
func (ts *TableSpec) LoadLayout(db *engine.Database, store catalog.StoreKind, spec *catalog.PartitionSpec, n int, seed int64) error {
	if err := db.CreateTableWithLayout(ts.Schema, store, spec); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	const batch = 4096
	rows := make([][]value.Value, 0, batch)
	for id := 0; id < n; id++ {
		rows = append(rows, ts.RowGen(rng, int64(id)))
		if len(rows) == batch {
			if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: ts.Schema.Name, Rows: rows}); err != nil {
				return err
			}
			rows = rows[:0]
		}
	}
	if len(rows) > 0 {
		if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: ts.Schema.Name, Rows: rows}); err != nil {
			return err
		}
	}
	// Start from a merged, read-optimized state (as after a bulk load).
	return db.Compact(ts.Schema.Name)
}

// StandardTable is the paper's 30-attribute experiment table: an ID plus
// "several keyfigures, filter attributes, and group-by attributes"
// (§5.2): here 12 keyfigures, 9 filters and 8 group-by attributes.
func StandardTable(name string) *TableSpec {
	cols := []schema.Column{{Name: "id", Type: value.Bigint}}
	var keyfigures, filters, groupBys []int
	for i := 0; i < 12; i++ {
		keyfigures = append(keyfigures, len(cols))
		typ := value.Double
		if i%3 == 2 {
			typ = value.Integer // a third of the keyfigures are integers
		}
		cols = append(cols, schema.Column{Name: fmt.Sprintf("k%d", i), Type: typ})
	}
	for i := 0; i < 9; i++ {
		filters = append(filters, len(cols))
		cols = append(cols, schema.Column{Name: fmt.Sprintf("f%d", i), Type: value.Integer})
	}
	for i := 0; i < 8; i++ {
		groupBys = append(groupBys, len(cols))
		cols = append(cols, schema.Column{Name: fmt.Sprintf("g%d", i), Type: value.Integer})
	}
	sch := schema.MustNew(name, cols, "id")
	filterCard := []int64{10, 100, 1000, 10, 100, 1000, 10000, 100, 10}
	groupCard := []int64{10, 20, 50, 100, 10, 25, 40, 80}
	return &TableSpec{
		Schema:     sch,
		Keyfigures: keyfigures,
		GroupBys:   groupBys,
		Filters:    filters,
		OLTPAttrs:  keyfigures[:2], // updates mostly touch the first keyfigures
		RowGen: func(rng *rand.Rand, id int64) []value.Value {
			row := make([]value.Value, 0, len(cols))
			row = append(row, value.NewBigint(id))
			for i := 0; i < 12; i++ {
				if i%3 == 2 {
					row = append(row, value.NewInt(rng.Int63n(10000)))
				} else {
					row = append(row, value.NewDouble(float64(rng.Intn(10000))/100))
				}
			}
			for i := 0; i < 9; i++ {
				row = append(row, value.NewInt(rng.Int63n(filterCard[i])))
			}
			for i := 0; i < 8; i++ {
				row = append(row, value.NewInt(rng.Int63n(groupCard[i])))
			}
			return row
		},
	}
}

// FactTable is the star-schema fact table of the join experiment (§5.3):
// 10 attributes — an ID, the dimension key, 4 keyfigures and 4 filter
// attributes.
func FactTable(name string, dimRows int) *TableSpec {
	cols := []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "dimkey", Type: value.Integer},
	}
	var keyfigures, filters []int
	for i := 0; i < 4; i++ {
		keyfigures = append(keyfigures, len(cols))
		cols = append(cols, schema.Column{Name: fmt.Sprintf("k%d", i), Type: value.Double})
	}
	for i := 0; i < 4; i++ {
		filters = append(filters, len(cols))
		cols = append(cols, schema.Column{Name: fmt.Sprintf("f%d", i), Type: value.Integer})
	}
	sch := schema.MustNew(name, cols, "id")
	return &TableSpec{
		Schema:     sch,
		Keyfigures: keyfigures,
		Filters:    filters,
		GroupBys:   nil, // grouping happens on the dimension attributes
		OLTPAttrs:  keyfigures[:1],
		RowGen: func(rng *rand.Rand, id int64) []value.Value {
			row := make([]value.Value, 0, len(cols))
			row = append(row, value.NewBigint(id))
			row = append(row, value.NewInt(rng.Int63n(int64(dimRows))))
			for i := 0; i < 4; i++ {
				row = append(row, value.NewDouble(float64(rng.Intn(10000))/100))
			}
			for i := 0; i < 4; i++ {
				row = append(row, value.NewInt(rng.Int63n(1000)))
			}
			return row
		},
	}
}

// DimensionTable is the star-schema dimension: 1000 tuples with 6
// attributes, including the group-by attributes the paper's join OLAP
// queries use.
func DimensionTable(name string) *TableSpec {
	cols := []schema.Column{
		{Name: "dkey", Type: value.Integer},
		{Name: "d_g0", Type: value.Integer},
		{Name: "d_g1", Type: value.Integer},
		{Name: "d_g2", Type: value.Integer},
		{Name: "d_name", Type: value.Varchar},
		{Name: "d_attr", Type: value.Integer},
	}
	sch := schema.MustNew(name, cols, "dkey")
	return &TableSpec{
		Schema:   sch,
		GroupBys: []int{1, 2, 3},
		RowGen: func(rng *rand.Rand, id int64) []value.Value {
			return []value.Value{
				value.NewInt(id),
				value.NewInt(id % 10),
				value.NewInt(id % 25),
				value.NewInt(id % 50),
				value.NewVarchar(fmt.Sprintf("dim-%03d", id%100)),
				value.NewInt(rng.Int63n(1000)),
			}
		},
	}
}

// VerticalOLAPTable is the vertical-partitioning OLAP setting (§5.3): 10
// keyfigures, 8 group-by attributes and only 2 attributes used for
// selections and updates.
func VerticalOLAPTable(name string) *TableSpec {
	return verticalSettingTable(name, 10, 8, 2)
}

// VerticalOLTPTable is the vertical-partitioning OLTP setting: 18
// attributes used for selections and updates, 1 keyfigure and 1 group-by
// attribute.
func VerticalOLTPTable(name string) *TableSpec {
	return verticalSettingTable(name, 1, 1, 18)
}

func verticalSettingTable(name string, nKey, nGroup, nOLTP int) *TableSpec {
	cols := []schema.Column{{Name: "id", Type: value.Bigint}}
	var keyfigures, groupBys, oltp []int
	for i := 0; i < nKey; i++ {
		keyfigures = append(keyfigures, len(cols))
		cols = append(cols, schema.Column{Name: fmt.Sprintf("k%d", i), Type: value.Double})
	}
	for i := 0; i < nGroup; i++ {
		groupBys = append(groupBys, len(cols))
		cols = append(cols, schema.Column{Name: fmt.Sprintf("g%d", i), Type: value.Integer})
	}
	for i := 0; i < nOLTP; i++ {
		oltp = append(oltp, len(cols))
		cols = append(cols, schema.Column{Name: fmt.Sprintf("s%d", i), Type: value.Integer})
	}
	sch := schema.MustNew(name, cols, "id")
	return &TableSpec{
		Schema:     sch,
		Keyfigures: keyfigures,
		GroupBys:   groupBys,
		Filters:    oltp,
		OLTPAttrs:  oltp,
		RowGen: func(rng *rand.Rand, id int64) []value.Value {
			row := make([]value.Value, 0, len(cols))
			row = append(row, value.NewBigint(id))
			for i := 0; i < nKey; i++ {
				row = append(row, value.NewDouble(float64(rng.Intn(10000))/100))
			}
			for i := 0; i < nGroup; i++ {
				row = append(row, value.NewInt(rng.Int63n(20)))
			}
			for i := 0; i < nOLTP; i++ {
				row = append(row, value.NewInt(rng.Int63n(1000)))
			}
			return row
		},
	}
}
