package workload

import (
	"math/rand"

	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
)

// MixConfig parameterizes a generated OLAP/OLTP workload mix against one
// table, following the paper's experiment setups.
type MixConfig struct {
	// Queries is the total number of statements (the paper uses 500 for
	// the single-table and partitioning experiments, 5000 for TPC-H).
	Queries int
	// OLAPFraction is the fraction of analytical (aggregation) queries;
	// the paper sweeps it between 0% and 5%.
	OLAPFraction float64
	// TableRows is the current table cardinality; update predicates and
	// insert keys are derived from it.
	TableRows int
	// HotDataFraction restricts updates to the most recent fraction of the
	// key space ("update queries addressing 10% of the data", Figure 8).
	// Zero means updates address the whole table.
	HotDataFraction float64
	// UpdateWeight, InsertWeight and PointSelectWeight split the OLTP part
	// of the mix. They are normalized; all-zero defaults to 2:1:1.
	UpdateWeight, InsertWeight, PointSelectWeight float64
	// WideUpdates makes updates assign several attributes at once
	// (tuples updated "as a whole", §3.2).
	WideUpdates bool
	// UpdateRowsPerQuery makes each update address a contiguous key range
	// of that many tuples instead of a single key. Range updates are where
	// the stores differ most: the row store serves them from its ordered
	// primary-key index and updates in place, while the column store must
	// migrate the affected tuples through its delta.
	UpdateRowsPerQuery int
	// OLTPAttrsOnly restricts update assignments and point-select
	// predicates to the spec's OLTPAttrs (used by the vertical
	// partitioning experiments).
	OLTPAttrsOnly bool
	// MaxAggs bounds the number of aggregates per OLAP query (default 2).
	MaxAggs int
	// NoFilterPreds disables WHERE predicates on OLAP queries (the
	// vertical-partitioning experiments aggregate and group only).
	NoFilterPreds bool
	// GroupByProb is the probability that an OLAP query groups (default
	// 0.5).
	GroupByProb float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c *MixConfig) normalize() {
	if c.Queries <= 0 {
		c.Queries = 500
	}
	if c.UpdateWeight == 0 && c.InsertWeight == 0 && c.PointSelectWeight == 0 {
		c.UpdateWeight, c.InsertWeight, c.PointSelectWeight = 2, 1, 1
	}
	if c.MaxAggs <= 0 {
		c.MaxAggs = 2
	}
	if c.GroupByProb == 0 {
		c.GroupByProb = 0.5
	}
}

var aggFuncs = []agg.Func{agg.Sum, agg.Avg, agg.Min, agg.Max}

// GenMixed generates a single-table mixed workload over the spec's table.
// Inserts use fresh keys above TableRows so the workload is executable.
func GenMixed(spec *TableSpec, cfg MixConfig) *query.Workload {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &query.Workload{}
	nextID := int64(cfg.TableRows)
	olap := 0
	// Distribute OLAP queries evenly through the workload (the paper's
	// mixes interleave query types).
	for i := 0; i < cfg.Queries; i++ {
		wantOLAP := float64(olap) < cfg.OLAPFraction*float64(i+1)
		if wantOLAP {
			olap++
			w.Add(genOLAP(spec, rng, cfg))
			continue
		}
		w.Add(genOLTP(spec, rng, cfg, &nextID))
	}
	return w
}

// genOLAP builds an aggregation query: 1..MaxAggs aggregates over random
// keyfigures, optional grouping, occasional filter predicate.
func genOLAP(spec *TableSpec, rng *rand.Rand, cfg MixConfig) *query.Query {
	numAggs := 1 + rng.Intn(cfg.MaxAggs)
	aggs := make([]agg.Spec, 0, numAggs)
	for i := 0; i < numAggs; i++ {
		col := spec.Keyfigures[rng.Intn(len(spec.Keyfigures))]
		fn := aggFuncs[rng.Intn(len(aggFuncs))]
		aggs = append(aggs, agg.Spec{Func: fn, Col: col})
	}
	q := &query.Query{Kind: query.Aggregate, Table: spec.Schema.Name, Aggs: aggs}
	if len(spec.GroupBys) > 0 && rng.Float64() < cfg.GroupByProb {
		q.GroupBy = []int{spec.GroupBys[rng.Intn(len(spec.GroupBys))]}
	}
	if !cfg.NoFilterPreds && len(spec.Filters) > 0 && rng.Float64() < 0.3 {
		col := spec.Filters[rng.Intn(len(spec.Filters))]
		q.Pred = &expr.Comparison{Col: col, Op: expr.Ge, Val: value.NewInt(rng.Int63n(10))}
	}
	return q
}

// genOLTP builds an insert, update or point select according to the
// configured weights.
func genOLTP(spec *TableSpec, rng *rand.Rand, cfg MixConfig, nextID *int64) *query.Query {
	total := cfg.UpdateWeight + cfg.InsertWeight + cfg.PointSelectWeight
	r := rng.Float64() * total
	switch {
	case r < cfg.UpdateWeight:
		return genUpdate(spec, rng, cfg)
	case r < cfg.UpdateWeight+cfg.InsertWeight:
		q := &query.Query{
			Kind: query.Insert, Table: spec.Schema.Name,
			Rows: [][]value.Value{spec.RowGen(rng, *nextID)},
		}
		*nextID++
		return q
	default:
		return genPointSelect(spec, rng, cfg)
	}
}

// updateTargetID picks the key an update addresses, restricted to the hot
// tail of the key space when HotDataFraction is set.
func updateTargetID(rng *rand.Rand, cfg MixConfig) int64 {
	n := int64(cfg.TableRows)
	if n <= 0 {
		return 0
	}
	if cfg.HotDataFraction > 0 && cfg.HotDataFraction < 1 {
		hot := int64(float64(n) * cfg.HotDataFraction)
		if hot < 1 {
			hot = 1
		}
		return n - hot + rng.Int63n(hot)
	}
	return rng.Int63n(n)
}

func genUpdate(spec *TableSpec, rng *rand.Rand, cfg MixConfig) *query.Query {
	set := map[int]value.Value{}
	cols := spec.Keyfigures
	if cfg.OLTPAttrsOnly && len(spec.OLTPAttrs) > 0 {
		cols = spec.OLTPAttrs
	}
	num := 1
	if cfg.WideUpdates {
		num = 2 + rng.Intn(3)
		if num > len(cols) {
			num = len(cols)
		}
	}
	for len(set) < num {
		col := cols[rng.Intn(len(cols))]
		set[col] = randomValueFor(spec, col, rng)
	}
	id := updateTargetID(rng, cfg)
	var pred expr.Predicate
	if k := cfg.UpdateRowsPerQuery; k > 1 {
		lo := id - int64(k) + 1
		if lo < 0 {
			lo = 0
		}
		pred = &expr.Between{Col: 0, Lo: value.NewBigint(lo), Hi: value.NewBigint(id)}
	} else {
		pred = &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(id)}
	}
	return &query.Query{
		Kind: query.Update, Table: spec.Schema.Name,
		Set:  set,
		Pred: pred,
	}
}

func genPointSelect(spec *TableSpec, rng *rand.Rand, cfg MixConfig) *query.Query {
	id := updateTargetID(rng, cfg)
	cols := []int{0}
	pool := spec.Keyfigures
	if cfg.OLTPAttrsOnly && len(spec.OLTPAttrs) > 0 {
		pool = spec.OLTPAttrs
	}
	for i := 0; i < 3 && i < len(pool); i++ {
		cols = append(cols, pool[rng.Intn(len(pool))])
	}
	return &query.Query{
		Kind: query.Select, Table: spec.Schema.Name,
		Cols: dedupInts(cols),
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(id)},
	}
}

// randomValueFor produces an update value matching the column's type,
// drawn from the same domain the table generators use — updates that set
// values already present in a column's dictionary hit the column store's
// in-place path, those that introduce new values force a tuple migration,
// mirroring real keyfigure/status updates.
func randomValueFor(spec *TableSpec, col int, rng *rand.Rand) value.Value {
	switch spec.Schema.Columns[col].Type {
	case value.Double:
		return value.NewDouble(float64(rng.Intn(10000)) / 100)
	case value.Integer:
		return value.NewInt(rng.Int63n(1000))
	case value.Bigint:
		return value.NewBigint(rng.Int63n(1000000))
	case value.Varchar:
		return value.NewVarchar("upd")
	case value.Date:
		return value.NewDate(rng.Int63n(3650))
	default:
		return value.NewInt(0)
	}
}

func dedupInts(xs []int) []int {
	seen := map[int]struct{}{}
	out := xs[:0]
	for _, x := range xs {
		if _, ok := seen[x]; ok {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	return out
}

// JoinMixConfig parameterizes the star-schema workload of the join
// experiment (§5.3): OLAP queries aggregate fact keyfigures grouped by
// dimension attributes; the OLTP part updates and inserts fact tuples.
type JoinMixConfig struct {
	Queries      int
	OLAPFraction float64
	FactRows     int
	DimRows      int
	// UpdateRowsPerQuery gives fact updates a contiguous key range (see
	// MixConfig.UpdateRowsPerQuery).
	UpdateRowsPerQuery int
	Seed               int64
}

// GenJoinMixed generates the star-schema mixed workload.
func GenJoinMixed(fact, dim *TableSpec, cfg JoinMixConfig) *query.Workload {
	if cfg.Queries <= 0 {
		cfg.Queries = 500
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &query.Workload{}
	nextID := int64(cfg.FactRows)
	nL := fact.Schema.NumColumns()
	olap := 0
	for i := 0; i < cfg.Queries; i++ {
		wantOLAP := float64(olap) < cfg.OLAPFraction*float64(i+1)
		if wantOLAP {
			olap++
			aggs := []agg.Spec{{
				Func: aggFuncs[rng.Intn(len(aggFuncs))],
				Col:  fact.Keyfigures[rng.Intn(len(fact.Keyfigures))],
			}}
			q := &query.Query{
				Kind: query.Aggregate, Table: fact.Schema.Name,
				Join: &query.Join{Table: dim.Schema.Name, LeftCol: 1, RightCol: 0},
				Aggs: aggs,
				// Group by a dimension attribute (combined indexing).
				GroupBy: []int{nL + dim.GroupBys[rng.Intn(len(dim.GroupBys))]},
			}
			// Most analytical join queries also filter on a fact attribute
			// (the fact table's filter columns exist for exactly this);
			// predicate push-down onto the probe side is where the column
			// store's code-level scans pay off.
			if len(fact.Filters) > 0 && rng.Float64() < 0.7 {
				col := fact.Filters[rng.Intn(len(fact.Filters))]
				q.Pred = &expr.Comparison{
					Col: col, Op: expr.Lt,
					Val: value.NewInt(100 + rng.Int63n(400)), // selectivity ≈ 0.1–0.5 over card 1000
				}
			}
			w.Add(q)
			continue
		}
		// OLTP: update or insert fact tuples.
		if rng.Float64() < 0.5 {
			col := fact.Keyfigures[rng.Intn(len(fact.Keyfigures))]
			id := rng.Int63n(int64(cfg.FactRows))
			var pred expr.Predicate
			if k := cfg.UpdateRowsPerQuery; k > 1 {
				lo := id - int64(k) + 1
				if lo < 0 {
					lo = 0
				}
				pred = &expr.Between{Col: 0, Lo: value.NewBigint(lo), Hi: value.NewBigint(id)}
			} else {
				pred = &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(id)}
			}
			w.Add(&query.Query{
				Kind: query.Update, Table: fact.Schema.Name,
				Set:  map[int]value.Value{col: value.NewDouble(float64(rng.Intn(10000)) / 100)},
				Pred: pred,
			})
		} else {
			w.Add(&query.Query{
				Kind: query.Insert, Table: fact.Schema.Name,
				Rows: [][]value.Value{fact.RowGen(rng, nextID)},
			})
			nextID++
		}
	}
	return w
}
