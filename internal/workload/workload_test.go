package workload

import (
	"math"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
)

func TestStandardTableSpec(t *testing.T) {
	spec := StandardTable("exp")
	if spec.Schema.NumColumns() != 30 {
		t.Errorf("columns = %d, want 30 (paper's experiment table)", spec.Schema.NumColumns())
	}
	if len(spec.Keyfigures) != 12 || len(spec.Filters) != 9 || len(spec.GroupBys) != 8 {
		t.Errorf("roles: k=%d f=%d g=%d", len(spec.Keyfigures), len(spec.Filters), len(spec.GroupBys))
	}
	if len(spec.Schema.PrimaryKey) != 1 || spec.Schema.PrimaryKey[0] != 0 {
		t.Errorf("pk: %v", spec.Schema.PrimaryKey)
	}
}

func TestVerticalSettingSpecs(t *testing.T) {
	olap := VerticalOLAPTable("volap")
	if len(olap.Keyfigures) != 10 || len(olap.GroupBys) != 8 || len(olap.OLTPAttrs) != 2 {
		t.Errorf("OLAP setting roles: %d/%d/%d", len(olap.Keyfigures), len(olap.GroupBys), len(olap.OLTPAttrs))
	}
	oltp := VerticalOLTPTable("voltp")
	if len(oltp.Keyfigures) != 1 || len(oltp.GroupBys) != 1 || len(oltp.OLTPAttrs) != 18 {
		t.Errorf("OLTP setting roles: %d/%d/%d", len(oltp.Keyfigures), len(oltp.GroupBys), len(oltp.OLTPAttrs))
	}
	if olap.Schema.NumColumns() != 21 || oltp.Schema.NumColumns() != 21 {
		t.Errorf("vertical tables should have 21 columns: %d, %d",
			olap.Schema.NumColumns(), oltp.Schema.NumColumns())
	}
}

func TestLoadDeterministic(t *testing.T) {
	spec := StandardTable("exp")
	db1, db2 := engine.New(), engine.New()
	if err := spec.Load(db1, catalog.ColumnStore, 500, 42); err != nil {
		t.Fatal(err)
	}
	spec2 := StandardTable("exp")
	if err := spec2.Load(db2, catalog.RowStore, 500, 42); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{
		Kind: query.Aggregate, Table: "exp",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: spec.Keyfigures[0]}},
	}
	r1, err := db1.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db2.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	// The stores accumulate in different orders; allow float round-off.
	a, b := r1.Rows[0][0].Double(), r2.Rows[0][0].Double()
	if math.Abs(a-b) > 1e-6*(math.Abs(a)+1) {
		t.Errorf("same seed produced different data: %v vs %v", a, b)
	}
	n, _ := db1.Rows("exp")
	if n != 500 {
		t.Errorf("rows = %d", n)
	}
}

func TestGenMixedFractionAndDeterminism(t *testing.T) {
	spec := StandardTable("exp")
	cfg := MixConfig{Queries: 1000, OLAPFraction: 0.05, TableRows: 10000, Seed: 9}
	w := GenMixed(spec, cfg)
	if w.Len() != 1000 {
		t.Fatalf("len = %d", w.Len())
	}
	if got := w.OLAPFraction(); math.Abs(got-0.05) > 0.005 {
		t.Errorf("OLAP fraction = %v", got)
	}
	w2 := GenMixed(spec, cfg)
	for i := range w.Queries {
		if w.Queries[i].String() != w2.Queries[i].String() {
			t.Fatalf("non-deterministic at %d:\n%s\n%s", i, w.Queries[i], w2.Queries[i])
		}
	}
}

func TestGenMixedHotData(t *testing.T) {
	spec := StandardTable("exp")
	cfg := MixConfig{
		Queries: 400, OLAPFraction: 0, TableRows: 10000,
		HotDataFraction: 0.1, Seed: 3,
		InsertWeight: 0, PointSelectWeight: 0, UpdateWeight: 1,
	}
	w := GenMixed(spec, cfg)
	for _, q := range w.Queries {
		if q.Kind != query.Update {
			t.Fatalf("expected only updates, got %v", q.Kind)
		}
		// Every update targets an id in the last 10% of the key space.
		id, ok := expr.EqualityOn(q.Pred, 0)
		if !ok {
			t.Fatal("update without PK equality")
		}
		if id.Int() < 9000 {
			t.Fatalf("update id %d outside hot region", id.Int())
		}
	}
}

func TestGenMixedExecutable(t *testing.T) {
	spec := StandardTable("exp")
	db := engine.New()
	if err := spec.Load(db, catalog.ColumnStore, 2000, 1); err != nil {
		t.Fatal(err)
	}
	w := GenMixed(spec, MixConfig{Queries: 200, OLAPFraction: 0.1, TableRows: 2000, Seed: 5, WideUpdates: true})
	for i, q := range w.Queries {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("query %d (%s): %v", i, q, err)
		}
	}
}

func TestGenMixedOLTPAttrsOnly(t *testing.T) {
	spec := VerticalOLTPTable("voltp")
	w := GenMixed(spec, MixConfig{
		Queries: 100, OLAPFraction: 0, TableRows: 1000, Seed: 2, OLTPAttrsOnly: true,
	})
	allowed := map[int]bool{}
	for _, c := range spec.OLTPAttrs {
		allowed[c] = true
	}
	for _, q := range w.Queries {
		if q.Kind != query.Update {
			continue
		}
		for c := range q.Set {
			if !allowed[c] {
				t.Fatalf("update touches non-OLTP attr %d", c)
			}
		}
	}
}

func TestGenJoinMixed(t *testing.T) {
	dim := DimensionTable("dim")
	fact := FactTable("fact", 1000)
	cfg := JoinMixConfig{Queries: 400, OLAPFraction: 0.05, FactRows: 5000, DimRows: 1000, Seed: 4}
	w := GenJoinMixed(fact, dim, cfg)
	if w.Len() != 400 {
		t.Fatalf("len = %d", w.Len())
	}
	joins := 0
	for _, q := range w.Queries {
		if q.Join != nil {
			joins++
			if q.Join.Table != "dim" {
				t.Fatalf("join table = %q", q.Join.Table)
			}
			if len(q.GroupBy) != 1 || q.GroupBy[0] < fact.Schema.NumColumns() {
				t.Fatalf("join group-by should reference the dimension: %v", q.GroupBy)
			}
		}
	}
	if math.Abs(float64(joins)/400-0.05) > 0.01 {
		t.Errorf("join OLAP fraction = %v", float64(joins)/400)
	}
	// Executable end to end.
	db := engine.New()
	if err := fact.Load(db, catalog.ColumnStore, 5000, 1); err != nil {
		t.Fatal(err)
	}
	if err := dim.Load(db, catalog.RowStore, 1000, 2); err != nil {
		t.Fatal(err)
	}
	for i, q := range w.Queries {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("query %d (%s): %v", i, q, err)
		}
	}
}
