package tpch

import (
	"testing"

	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
)

func TestSchemasComplete(t *testing.T) {
	schemas := Schemas()
	if len(schemas) != 8 {
		t.Fatalf("tables = %d", len(schemas))
	}
	for _, name := range TableNames {
		sch, ok := schemas[name]
		if !ok {
			t.Fatalf("missing %q", name)
		}
		if len(sch.PrimaryKey) == 0 {
			t.Errorf("%s has no primary key", name)
		}
	}
	if schemas["lineitem"].NumColumns() != 16 {
		t.Errorf("lineitem columns = %d, want 16", schemas["lineitem"].NumColumns())
	}
	if schemas["orders"].NumColumns() != 9 {
		t.Errorf("orders columns = %d, want 9", schemas["orders"].NumColumns())
	}
	if len(schemas["partsupp"].PrimaryKey) != 2 || len(schemas["lineitem"].PrimaryKey) != 2 {
		t.Error("composite keys missing")
	}
}

func TestSizesRatios(t *testing.T) {
	s := Sizes(1)
	if s["region"] != 5 || s["nation"] != 25 {
		t.Errorf("fixed tables: %v", s)
	}
	if s["orders"] != 1_500_000 || s["customer"] != 150_000 {
		t.Errorf("sf1 sizes: %v", s)
	}
	if s["orders"]/s["customer"] != 10 {
		t.Error("orders:customer ratio should be 10:1")
	}
	tiny := Sizes(0.001)
	for _, n := range tiny {
		if n < 1 {
			t.Errorf("degenerate size: %v", tiny)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1 := NewGenerator(0.002, 9)
	g2 := NewGenerator(0.002, 9)
	sum := func(g *Generator) float64 {
		total := 0.0
		err := g.Generate("orders", func(rows [][]value.Value) error {
			for _, r := range rows {
				total += r[3].Double()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	if sum(g1) != sum(g2) {
		t.Error("generation is not deterministic")
	}
}

func TestGenerateUnknownTable(t *testing.T) {
	g := NewGenerator(0.01, 1)
	if err := g.Generate("bogus", func([][]value.Value) error { return nil }); err == nil {
		t.Error("unknown table accepted")
	}
}

func loadTiny(t *testing.T, store catalog.StoreKind) (*engine.Database, *Generator) {
	t.Helper()
	db := engine.New()
	g, err := Load(db, 0.002, 3, store)
	if err != nil {
		t.Fatal(err)
	}
	return db, g
}

func TestLoadAllTables(t *testing.T) {
	db, g := loadTiny(t, catalog.ColumnStore)
	for _, name := range TableNames {
		n, err := db.Rows(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n == 0 {
			t.Errorf("%s is empty", name)
		}
		if name == "orders" && n != g.Rows("orders") {
			t.Errorf("orders rows = %d, want %d", n, g.Rows("orders"))
		}
	}
	// lineitem averages ~4 rows per order.
	li, _ := db.Rows("lineitem")
	or, _ := db.Rows("orders")
	ratio := float64(li) / float64(or)
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("lineitem/orders ratio = %v", ratio)
	}
}

func TestWorkloadShape(t *testing.T) {
	g := NewGenerator(0.002, 3)
	w := GenWorkload(g, WorkloadConfig{Queries: 2000, OLAPFraction: 0.01, Seed: 5})
	if w.Len() != 2000 {
		t.Fatalf("len = %d", w.Len())
	}
	frac := w.OLAPFraction()
	if frac < 0.008 || frac > 0.012 {
		t.Errorf("OLAP fraction = %v", frac)
	}
	var touched = map[string]bool{}
	joins := 0
	for _, q := range w.Queries {
		touched[q.Table] = true
		if q.Table == "nation" || q.Table == "region" {
			if q.Kind == query.Insert || q.Kind == query.Update {
				t.Error("nation/region must not receive DML (paper §5.3)")
			}
		}
		if q.Join != nil {
			joins++
		}
	}
	for _, must := range []string{"lineitem", "orders", "customer"} {
		if !touched[must] {
			t.Errorf("workload never touches %s", must)
		}
	}
	if joins == 0 {
		t.Error("workload should contain join queries")
	}
}

func TestWorkloadExecutable(t *testing.T) {
	db, g := loadTiny(t, catalog.RowStore)
	w := GenWorkload(g, WorkloadConfig{Queries: 300, OLAPFraction: 0.02, Seed: 7})
	for i, q := range w.Queries {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("query %d (%s): %v", i, q, err)
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	g := NewGenerator(0.002, 3)
	a := GenWorkload(g, WorkloadConfig{Queries: 100, OLAPFraction: 0.05, Seed: 11})
	g2 := NewGenerator(0.002, 3)
	b := GenWorkload(g2, WorkloadConfig{Queries: 100, OLAPFraction: 0.05, Seed: 11})
	for i := range a.Queries {
		if a.Queries[i].String() != b.Queries[i].String() {
			t.Fatalf("workload differs at %d", i)
		}
	}
}
