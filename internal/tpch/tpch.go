// Package tpch implements a deterministic, scaled-down TPC-H data
// generator for the paper's final experiment (§5.3 "Combination and
// Comparison"): all eight TPC-H tables with their schemas, key
// relationships and cardinality ratios, plus the paper's mixed workload —
// OLTP inserts and updates against every table except nation and region,
// and OLAP aggregates (with and without joins and groupings) mainly on
// lineitem and orders.
//
// The generator is not a verbatim dbgen port: text columns use compact
// synthetic vocabularies. What matters for the storage-advisor experiment
// is the schema shape (keyfigures vs. status attributes), the cardinality
// ratios between tables and the value distributions that drive
// dictionary-compression rates — all of which are preserved.
package tpch

import (
	"fmt"
	"math/rand"

	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// Cardinality ratios at scale factor 1 (rows = ratio × SF, except the
// fixed tables).
const (
	regionRows   = 5
	nationRows   = 25
	supplierSF   = 10_000
	customerSF   = 150_000
	partSF       = 200_000
	orderSF      = 1_500_000
	lineitemsMax = 7 // lineitems per order: 1..7, ~4 on average
)

// TableNames lists the TPC-H tables in dependency order.
var TableNames = []string{
	"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
}

// Schemas returns the eight TPC-H table schemas.
func Schemas() map[string]*schema.Table {
	V, I, D, B, DT := value.Varchar, value.Integer, value.Double, value.Bigint, value.Date
	mk := func(name string, cols []schema.Column, pk ...string) *schema.Table {
		return schema.MustNew(name, cols, pk...)
	}
	return map[string]*schema.Table{
		"region": mk("region", []schema.Column{
			{Name: "r_regionkey", Type: I},
			{Name: "r_name", Type: V},
			{Name: "r_comment", Type: V},
		}, "r_regionkey"),
		"nation": mk("nation", []schema.Column{
			{Name: "n_nationkey", Type: I},
			{Name: "n_name", Type: V},
			{Name: "n_regionkey", Type: I},
			{Name: "n_comment", Type: V},
		}, "n_nationkey"),
		"supplier": mk("supplier", []schema.Column{
			{Name: "s_suppkey", Type: B},
			{Name: "s_name", Type: V},
			{Name: "s_address", Type: V},
			{Name: "s_nationkey", Type: I},
			{Name: "s_phone", Type: V},
			{Name: "s_acctbal", Type: D},
			{Name: "s_comment", Type: V},
		}, "s_suppkey"),
		"customer": mk("customer", []schema.Column{
			{Name: "c_custkey", Type: B},
			{Name: "c_name", Type: V},
			{Name: "c_address", Type: V},
			{Name: "c_nationkey", Type: I},
			{Name: "c_phone", Type: V},
			{Name: "c_acctbal", Type: D},
			{Name: "c_mktsegment", Type: V},
			{Name: "c_comment", Type: V},
		}, "c_custkey"),
		"part": mk("part", []schema.Column{
			{Name: "p_partkey", Type: B},
			{Name: "p_name", Type: V},
			{Name: "p_mfgr", Type: V},
			{Name: "p_brand", Type: V},
			{Name: "p_type", Type: V},
			{Name: "p_size", Type: I},
			{Name: "p_container", Type: V},
			{Name: "p_retailprice", Type: D},
			{Name: "p_comment", Type: V},
		}, "p_partkey"),
		"partsupp": mk("partsupp", []schema.Column{
			{Name: "ps_partkey", Type: B},
			{Name: "ps_suppkey", Type: B},
			{Name: "ps_availqty", Type: I},
			{Name: "ps_supplycost", Type: D},
			{Name: "ps_comment", Type: V},
		}, "ps_partkey", "ps_suppkey"),
		"orders": mk("orders", []schema.Column{
			{Name: "o_orderkey", Type: B},
			{Name: "o_custkey", Type: B},
			{Name: "o_orderstatus", Type: V},
			{Name: "o_totalprice", Type: D},
			{Name: "o_orderdate", Type: DT},
			{Name: "o_orderpriority", Type: V},
			{Name: "o_clerk", Type: V},
			{Name: "o_shippriority", Type: I},
			{Name: "o_comment", Type: V},
		}, "o_orderkey"),
		"lineitem": mk("lineitem", []schema.Column{
			{Name: "l_orderkey", Type: B},
			{Name: "l_linenumber", Type: I},
			{Name: "l_partkey", Type: B},
			{Name: "l_suppkey", Type: B},
			{Name: "l_quantity", Type: D},
			{Name: "l_extendedprice", Type: D},
			{Name: "l_discount", Type: D},
			{Name: "l_tax", Type: D},
			{Name: "l_returnflag", Type: V},
			{Name: "l_linestatus", Type: V},
			{Name: "l_shipdate", Type: DT},
			{Name: "l_commitdate", Type: DT},
			{Name: "l_receiptdate", Type: DT},
			{Name: "l_shipinstruct", Type: V},
			{Name: "l_shipmode", Type: V},
			{Name: "l_comment", Type: V},
		}, "l_orderkey", "l_linenumber"),
	}
}

// Sizes returns the row counts per table at the given scale factor.
func Sizes(sf float64) map[string]int {
	scale := func(base int) int {
		n := int(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	suppliers := scale(supplierSF)
	psPerPart := 4
	if suppliers < psPerPart {
		psPerPart = suppliers
	}
	return map[string]int{
		"region":   regionRows,
		"nation":   nationRows,
		"supplier": suppliers,
		"customer": scale(customerSF),
		"part":     scale(partSF),
		"partsupp": scale(partSF) * psPerPart,
		"orders":   scale(orderSF),
		// lineitem is generated per order; this is the expected size.
		"lineitem": scale(orderSF) * 4,
	}
}

var (
	regionNames   = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames   = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	segments      = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	containers    = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP PACK", "JUMBO JAR"}
	types         = []string{"ECONOMY ANODIZED STEEL", "LARGE BRUSHED BRASS", "STANDARD POLISHED TIN", "SMALL PLATED COPPER", "PROMO BURNISHED NICKEL", "MEDIUM ANODIZED TIN"}
	shipModes     = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	shipInstructs = []string{"COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"}
	returnFlags   = []string{"A", "N", "R"}
	orderStatuses = []string{"F", "O", "P"}
)

func comment(rng *rand.Rand) value.Value {
	return value.NewVarchar(fmt.Sprintf("c%04d", rng.Intn(5000)))
}

// Generator produces TPC-H rows deterministically.
type Generator struct {
	SF   float64
	Seed int64

	sizes map[string]int
}

// NewGenerator creates a generator for the given scale factor.
func NewGenerator(sf float64, seed int64) *Generator {
	return &Generator{SF: sf, Seed: seed, sizes: Sizes(sf)}
}

// Rows returns the target cardinality of a table.
func (g *Generator) Rows(table string) int { return g.sizes[table] }

// Generate streams the rows of one table in batches to emit. Generation
// is deterministic per (table, SF, Seed).
func (g *Generator) Generate(table string, emit func(rows [][]value.Value) error) error {
	rng := rand.New(rand.NewSource(g.Seed + int64(len(table))*7919))
	const batch = 4096
	buf := make([][]value.Value, 0, batch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := emit(buf)
		buf = buf[:0]
		return err
	}
	add := func(row []value.Value) error {
		buf = append(buf, row)
		if len(buf) == batch {
			return flush()
		}
		return nil
	}
	n := g.sizes[table]
	switch table {
	case "region":
		for i := 0; i < regionRows; i++ {
			if err := add([]value.Value{
				value.NewInt(int64(i)),
				value.NewVarchar(regionNames[i]),
				comment(rng),
			}); err != nil {
				return err
			}
		}
	case "nation":
		for i := 0; i < nationRows; i++ {
			if err := add([]value.Value{
				value.NewInt(int64(i)),
				value.NewVarchar(nationNames[i]),
				value.NewInt(int64(i % regionRows)),
				comment(rng),
			}); err != nil {
				return err
			}
		}
	case "supplier":
		for i := 0; i < n; i++ {
			if err := add([]value.Value{
				value.NewBigint(int64(i + 1)),
				value.NewVarchar(fmt.Sprintf("Supplier#%09d", i+1)),
				value.NewVarchar(fmt.Sprintf("addr-%d", rng.Intn(1000))),
				value.NewInt(rng.Int63n(nationRows)),
				value.NewVarchar(fmt.Sprintf("%02d-%03d-%04d", rng.Intn(35), rng.Intn(1000), rng.Intn(10000))),
				value.NewDouble(float64(rng.Intn(2000000))/100 - 1000),
				comment(rng),
			}); err != nil {
				return err
			}
		}
	case "customer":
		for i := 0; i < n; i++ {
			if err := add([]value.Value{
				value.NewBigint(int64(i + 1)),
				value.NewVarchar(fmt.Sprintf("Customer#%09d", i+1)),
				value.NewVarchar(fmt.Sprintf("addr-%d", rng.Intn(10000))),
				value.NewInt(rng.Int63n(nationRows)),
				value.NewVarchar(fmt.Sprintf("%02d-%03d-%04d", rng.Intn(35), rng.Intn(1000), rng.Intn(10000))),
				value.NewDouble(float64(rng.Intn(2000000))/100 - 1000),
				value.NewVarchar(segments[rng.Intn(len(segments))]),
				comment(rng),
			}); err != nil {
				return err
			}
		}
	case "part":
		for i := 0; i < n; i++ {
			if err := add([]value.Value{
				value.NewBigint(int64(i + 1)),
				value.NewVarchar(fmt.Sprintf("part %d %d", rng.Intn(100), rng.Intn(100))),
				value.NewVarchar(fmt.Sprintf("Manufacturer#%d", 1+rng.Intn(5))),
				value.NewVarchar(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))),
				value.NewVarchar(types[rng.Intn(len(types))]),
				value.NewInt(1 + rng.Int63n(50)),
				value.NewVarchar(containers[rng.Intn(len(containers))]),
				value.NewDouble(900 + float64(rng.Intn(110000))/100),
				comment(rng),
			}); err != nil {
				return err
			}
		}
	case "partsupp":
		parts := g.sizes["part"]
		sups := g.sizes["supplier"]
		lines := 4
		if sups < lines {
			lines = sups
		}
		step := sups / 4
		if step < 1 {
			step = 1
		}
		for pi := 0; pi < parts; pi++ {
			for j := 0; j < lines; j++ {
				if err := add([]value.Value{
					value.NewBigint(int64(pi + 1)),
					value.NewBigint(int64((pi+j*step)%sups + 1)),
					value.NewInt(1 + rng.Int63n(9999)),
					value.NewDouble(float64(rng.Intn(100000)) / 100),
					comment(rng),
				}); err != nil {
					return err
				}
			}
		}
	case "orders":
		customers := g.sizes["customer"]
		for i := 0; i < n; i++ {
			if err := add(g.orderRow(rng, int64(i+1), customers)); err != nil {
				return err
			}
		}
	case "lineitem":
		orders := g.sizes["orders"]
		// Use the dedicated lineitem rng but the SAME per-order line
		// counts every run (derived from the order key).
		for o := 1; o <= orders; o++ {
			lines := 1 + (o*2654435761)%lineitemsMax
			for ln := 1; ln <= lines; ln++ {
				if err := add(g.lineitemRow(rng, int64(o), int64(ln))); err != nil {
					return err
				}
			}
		}
	default:
		return fmt.Errorf("tpch: unknown table %q", table)
	}
	return flush()
}

// orderRow builds one orders tuple; exposed for workload inserts.
func (g *Generator) orderRow(rng *rand.Rand, key int64, customers int) []value.Value {
	return []value.Value{
		value.NewBigint(key),
		value.NewBigint(1 + rng.Int63n(int64(customers))),
		value.NewVarchar(orderStatuses[rng.Intn(len(orderStatuses))]),
		value.NewDouble(850 + float64(rng.Intn(50000000))/100),
		value.NewDate(8035 + rng.Int63n(2406)), // 1992-01-01 .. 1998-08-02
		value.NewVarchar(priorities[rng.Intn(len(priorities))]),
		value.NewVarchar(fmt.Sprintf("Clerk#%09d", 1+rng.Intn(1000))),
		value.NewInt(0),
		comment(rng),
	}
}

// lineitemRow builds one lineitem tuple; exposed for workload inserts.
func (g *Generator) lineitemRow(rng *rand.Rand, orderKey, lineNumber int64) []value.Value {
	parts := int64(g.sizes["part"])
	sups := int64(g.sizes["supplier"])
	ship := 8035 + rng.Int63n(2406)
	return []value.Value{
		value.NewBigint(orderKey),
		value.NewInt(lineNumber),
		value.NewBigint(1 + rng.Int63n(parts)),
		value.NewBigint(1 + rng.Int63n(sups)),
		value.NewDouble(float64(1 + rng.Intn(50))),
		value.NewDouble(float64(rng.Intn(9500000))/100 + 900),
		value.NewDouble(float64(rng.Intn(11)) / 100),
		value.NewDouble(float64(rng.Intn(9)) / 100),
		value.NewVarchar(returnFlags[rng.Intn(len(returnFlags))]),
		value.NewVarchar([]string{"F", "O"}[rng.Intn(2)]),
		value.NewDate(ship),
		value.NewDate(ship + rng.Int63n(30)),
		value.NewDate(ship + rng.Int63n(30)),
		value.NewVarchar(shipInstructs[rng.Intn(len(shipInstructs))]),
		value.NewVarchar(shipModes[rng.Intn(len(shipModes))]),
		comment(rng),
	}
}

// Load creates and fills all eight tables in db, every table placed in
// the given store.
func Load(db *engine.Database, sf float64, seed int64, store catalog.StoreKind) (*Generator, error) {
	return LoadLayout(db, sf, seed, func(string) (catalog.StoreKind, *catalog.PartitionSpec) {
		return store, nil
	})
}

// LoadLayout creates and fills all eight tables, asking layoutFor for each
// table's store and optional partitioning — how the Figure 10 experiment
// materializes the advisor's recommended layouts.
func LoadLayout(db *engine.Database, sf float64, seed int64, layoutFor func(table string) (catalog.StoreKind, *catalog.PartitionSpec)) (*Generator, error) {
	g := NewGenerator(sf, seed)
	schemas := Schemas()
	for _, name := range TableNames {
		store, spec := layoutFor(name)
		if err := db.CreateTableWithLayout(schemas[name], store, spec); err != nil {
			return nil, err
		}
		table := name
		err := g.Generate(table, func(rows [][]value.Value) error {
			_, err := db.Exec(&query.Query{Kind: query.Insert, Table: table, Rows: rows})
			return err
		})
		if err != nil {
			return nil, err
		}
		if err := db.Compact(table); err != nil {
			return nil, err
		}
	}
	return g, nil
}
