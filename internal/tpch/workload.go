package tpch

import (
	"math/rand"

	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
)

// WorkloadConfig parameterizes the paper's TPC-H mixed workload: 5000
// queries with a fraction of about 1% OLAP queries (§5.3).
type WorkloadConfig struct {
	Queries      int
	OLAPFraction float64
	// HotOrderFraction restricts orders/lineitem status updates to the
	// most recent fraction of order keys — order status transitions have
	// temporal locality, which is what makes the paper's horizontal
	// partitioning of lineitem and orders effective. Zero defaults to 0.2.
	HotOrderFraction float64
	Seed             int64
}

// DefaultWorkloadConfig mirrors the paper's setting.
func DefaultWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{Queries: 5000, OLAPFraction: 0.01, HotOrderFraction: 0.2, Seed: 1}
}

// oltpTables are the insert/update targets: "all tables but nation and
// region", weighted toward the large transactional tables. insertProb is
// the insert share of each table's DML: line items are append-mostly
// (each is status-updated at most a few times), master data is
// update-mostly.
var oltpTables = []struct {
	name       string
	weight     float64
	insertProb float64
}{
	{"lineitem", 0.35, 0.65},
	{"orders", 0.30, 0.45},
	{"customer", 0.10, 0.25},
	{"part", 0.10, 0.25},
	{"partsupp", 0.08, 0.25},
	{"supplier", 0.07, 0.25},
}

// GenWorkload generates the mixed TPC-H workload. Insert statements carry
// fresh primary keys above the generated data so the workload is
// executable; updates address existing keys.
func GenWorkload(g *Generator, cfg WorkloadConfig) *query.Workload {
	if cfg.Queries <= 0 {
		cfg.Queries = DefaultWorkloadConfig().Queries
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	schemas := Schemas()
	col := func(table, name string) int {
		return schemas[table].ColIndex(name)
	}
	w := &query.Workload{}
	next := map[string]int64{
		"orders":   int64(g.Rows("orders")) + 1,
		"lineitem": int64(g.Rows("orders")) + 1_000_000_000,
		"customer": int64(g.Rows("customer")) + 1,
		"part":     int64(g.Rows("part")) + 1,
		"partsupp": int64(g.Rows("part")) + 1,
		"supplier": int64(g.Rows("supplier")) + 1,
	}

	olapQuery := func() *query.Query {
		switch rng.Intn(6) {
		case 0: // plain lineitem aggregate
			return &query.Query{
				Kind: query.Aggregate, Table: "lineitem",
				Aggs: []agg.Spec{
					{Func: agg.Sum, Col: col("lineitem", "l_extendedprice")},
					{Func: agg.Sum, Col: col("lineitem", "l_discount")},
					{Func: agg.Avg, Col: col("lineitem", "l_quantity")},
					{Func: agg.Max, Col: col("lineitem", "l_extendedprice")},
				},
			}
		case 1: // grouped lineitem aggregate (Q1: eight aggregates)
			return &query.Query{
				Kind: query.Aggregate, Table: "lineitem",
				Aggs: []agg.Spec{
					{Func: agg.Sum, Col: col("lineitem", "l_quantity")},
					{Func: agg.Sum, Col: col("lineitem", "l_extendedprice")},
					{Func: agg.Sum, Col: col("lineitem", "l_discount")},
					{Func: agg.Sum, Col: col("lineitem", "l_tax")},
					{Func: agg.Avg, Col: col("lineitem", "l_quantity")},
					{Func: agg.Avg, Col: col("lineitem", "l_extendedprice")},
					{Func: agg.Avg, Col: col("lineitem", "l_discount")},
					{Func: agg.Count, Col: -1},
				},
				GroupBy: []int{col("lineitem", "l_returnflag"), col("lineitem", "l_linestatus")},
				Pred: &expr.Comparison{
					Col: col("lineitem", "l_shipdate"), Op: expr.Le,
					Val: value.NewDate(8035 + rng.Int63n(2406)),
				},
			}
		case 2: // orders aggregate grouped by priority
			return &query.Query{
				Kind: query.Aggregate, Table: "orders",
				Aggs: []agg.Spec{
					{Func: agg.Sum, Col: col("orders", "o_totalprice")},
					{Func: agg.Avg, Col: col("orders", "o_totalprice")},
					{Func: agg.Min, Col: col("orders", "o_orderdate")},
					{Func: agg.Max, Col: col("orders", "o_orderdate")},
					{Func: agg.Count, Col: -1},
				},
				GroupBy: []int{col("orders", "o_orderpriority")},
			}
		case 3: // lineitem ⋈ orders with a date filter (Q3/Q4-like)
			nL := schemas["lineitem"].NumColumns()
			return &query.Query{
				Kind: query.Aggregate, Table: "lineitem",
				Join: &query.Join{
					Table:    "orders",
					LeftCol:  col("lineitem", "l_orderkey"),
					RightCol: col("orders", "o_orderkey"),
				},
				Aggs:    []agg.Spec{{Func: agg.Sum, Col: col("lineitem", "l_extendedprice")}},
				GroupBy: []int{nL + col("orders", "o_orderpriority")},
				Pred: &expr.Comparison{
					Col: col("lineitem", "l_shipdate"), Op: expr.Le,
					Val: value.NewDate(8035 + 300 + rng.Int63n(900)),
				},
			}
		case 4: // orders ⋈ customer grouped by market segment (Q3-like filter)
			nL := schemas["orders"].NumColumns()
			return &query.Query{
				Kind: query.Aggregate, Table: "orders",
				Join: &query.Join{
					Table:    "customer",
					LeftCol:  col("orders", "o_custkey"),
					RightCol: col("customer", "c_custkey"),
				},
				Aggs:    []agg.Spec{{Func: agg.Sum, Col: col("orders", "o_totalprice")}},
				GroupBy: []int{nL + col("customer", "c_mktsegment")},
				Pred: &expr.Comparison{
					Col: col("orders", "o_orderdate"), Op: expr.Le,
					Val: value.NewDate(8035 + 300 + rng.Int63n(900)),
				},
			}
		default: // lineitem shipping-mode aggregate
			return &query.Query{
				Kind: query.Aggregate, Table: "lineitem",
				Aggs: []agg.Spec{
					{Func: agg.Sum, Col: col("lineitem", "l_discount")},
					{Func: agg.Sum, Col: col("lineitem", "l_extendedprice")},
					{Func: agg.Avg, Col: col("lineitem", "l_tax")},
					{Func: agg.Max, Col: col("lineitem", "l_extendedprice")},
				},
				GroupBy: []int{col("lineitem", "l_shipmode")},
			}
		}
	}

	hotFrac := cfg.HotOrderFraction
	if hotFrac <= 0 || hotFrac > 1 {
		hotFrac = 0.2
	}

	pickOLTPTable := func() (string, float64) {
		r := rng.Float64()
		acc := 0.0
		for _, t := range oltpTables {
			acc += t.weight
			if r < acc {
				return t.name, t.insertProb
			}
		}
		return "lineitem", 0.65
	}

	oltpQuery := func() *query.Query {
		table, insertProb := pickOLTPTable()
		if rng.Float64() < insertProb {
			return genInsert(g, rng, table, next)
		}
		return genUpdate(g, rng, table, col, hotFrac)
	}

	olap := 0
	for i := 0; i < cfg.Queries; i++ {
		if float64(olap) < cfg.OLAPFraction*float64(i+1) {
			olap++
			w.Add(olapQuery())
			continue
		}
		w.Add(oltpQuery())
	}
	return w
}

func genInsert(g *Generator, rng *rand.Rand, table string, next map[string]int64) *query.Query {
	var row []value.Value
	switch table {
	case "orders":
		row = g.orderRow(rng, next["orders"], g.Rows("customer"))
		next["orders"]++
	case "lineitem":
		row = g.lineitemRow(rng, next["lineitem"], 1)
		next["lineitem"]++
	case "customer":
		k := next["customer"]
		next["customer"]++
		row = []value.Value{
			value.NewBigint(k),
			value.NewVarchar("Customer#new"),
			value.NewVarchar("addr-new"),
			value.NewInt(rng.Int63n(nationRows)),
			value.NewVarchar("00-000-0000"),
			value.NewDouble(0),
			value.NewVarchar(segments[rng.Intn(len(segments))]),
			comment(rng),
		}
	case "part":
		k := next["part"]
		next["part"]++
		row = []value.Value{
			value.NewBigint(k),
			value.NewVarchar("part new"),
			value.NewVarchar("Manufacturer#1"),
			value.NewVarchar("Brand#11"),
			value.NewVarchar(types[rng.Intn(len(types))]),
			value.NewInt(1 + rng.Int63n(50)),
			value.NewVarchar(containers[rng.Intn(len(containers))]),
			value.NewDouble(1000),
			comment(rng),
		}
	case "partsupp":
		k := next["partsupp"]
		next["partsupp"]++
		row = []value.Value{
			value.NewBigint(k),
			value.NewBigint(1 + rng.Int63n(int64(g.Rows("supplier")))),
			value.NewInt(1 + rng.Int63n(9999)),
			value.NewDouble(float64(rng.Intn(100000)) / 100),
			comment(rng),
		}
	case "supplier":
		k := next["supplier"]
		next["supplier"]++
		row = []value.Value{
			value.NewBigint(k),
			value.NewVarchar("Supplier#new"),
			value.NewVarchar("addr-new"),
			value.NewInt(rng.Int63n(nationRows)),
			value.NewVarchar("00-000-0000"),
			value.NewDouble(0),
			comment(rng),
		}
	}
	return &query.Query{Kind: query.Insert, Table: table, Rows: [][]value.Value{row}}
}

func genUpdate(g *Generator, rng *rand.Rand, table string, col func(table, name string) int, hotFrac float64) *query.Query {
	pkEq := func(c int, k int64) expr.Predicate {
		return &expr.Comparison{Col: c, Op: expr.Eq, Val: value.NewBigint(k)}
	}
	// Status updates address recent orders.
	hotOrderKey := func() int64 {
		n := int64(g.Rows("orders"))
		hot := int64(float64(n) * hotFrac)
		if hot < 1 {
			hot = 1
		}
		return n - hot + 1 + rng.Int63n(hot)
	}
	switch table {
	case "orders":
		k := hotOrderKey()
		set := map[int]value.Value{
			col("orders", "o_orderstatus"): value.NewVarchar(orderStatuses[rng.Intn(len(orderStatuses))]),
		}
		if rng.Intn(2) == 0 {
			set[col("orders", "o_totalprice")] = value.NewDouble(float64(rng.Intn(5000000)) / 100)
		}
		return &query.Query{Kind: query.Update, Table: "orders", Set: set,
			Pred: pkEq(col("orders", "o_orderkey"), k)}
	case "lineitem":
		k := hotOrderKey()
		set := map[int]value.Value{
			col("lineitem", "l_linestatus"): value.NewVarchar([]string{"F", "O"}[rng.Intn(2)]),
		}
		return &query.Query{Kind: query.Update, Table: "lineitem", Set: set,
			Pred: pkEq(col("lineitem", "l_orderkey"), k)}
	case "customer":
		k := 1 + rng.Int63n(int64(g.Rows("customer")))
		return &query.Query{Kind: query.Update, Table: "customer",
			Set:  map[int]value.Value{col("customer", "c_acctbal"): value.NewDouble(float64(rng.Intn(100000)) / 100)},
			Pred: pkEq(col("customer", "c_custkey"), k)}
	case "part":
		k := 1 + rng.Int63n(int64(g.Rows("part")))
		return &query.Query{Kind: query.Update, Table: "part",
			Set:  map[int]value.Value{col("part", "p_retailprice"): value.NewDouble(900 + float64(rng.Intn(110000))/100)},
			Pred: pkEq(col("part", "p_partkey"), k)}
	case "partsupp":
		k := 1 + rng.Int63n(int64(g.Rows("part")))
		return &query.Query{Kind: query.Update, Table: "partsupp",
			Set:  map[int]value.Value{col("partsupp", "ps_availqty"): value.NewInt(1 + rng.Int63n(9999))},
			Pred: pkEq(col("partsupp", "ps_partkey"), k)}
	default: // supplier
		k := 1 + rng.Int63n(int64(g.Rows("supplier")))
		return &query.Query{Kind: query.Update, Table: "supplier",
			Set:  map[int]value.Value{col("supplier", "s_acctbal"): value.NewDouble(float64(rng.Intn(100000)) / 100)},
			Pred: pkEq(col("supplier", "s_suppkey"), k)}
	}
}
