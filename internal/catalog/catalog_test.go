package catalog

import (
	"strings"
	"testing"

	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func demoSchema() *schema.Table {
	return schema.MustNew("sales", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "region", Type: value.Integer},
		{Name: "amount", Type: value.Double},
		{Name: "status", Type: value.Varchar, Nullable: true},
	}, "id")
}

func TestStoreKindString(t *testing.T) {
	if RowStore.String() != "ROW" || ColumnStore.String() != "COLUMN" || Partitioned.String() != "PARTITIONED" {
		t.Error("StoreKind names wrong")
	}
}

func TestCatalogAddLookupRemove(t *testing.T) {
	c := New()
	e := &TableEntry{Schema: demoSchema(), Store: RowStore}
	if err := c.Add(e); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(e); err == nil {
		t.Error("duplicate add accepted")
	}
	if got := c.Table("SALES"); got == nil || got.Schema != e.Schema || got.Store != e.Store {
		t.Error("case-insensitive lookup failed")
	}
	if c.Table("nope") != nil {
		t.Error("missing table should be nil")
	}
	names := c.Names()
	if len(names) != 1 || names[0] != "sales" {
		t.Errorf("Names = %v", names)
	}
	if !c.Remove("sales") {
		t.Error("remove failed")
	}
	if c.Remove("sales") {
		t.Error("double remove succeeded")
	}
}

func TestCatalogAddNil(t *testing.T) {
	c := New()
	if err := c.Add(nil); err == nil {
		t.Error("nil entry accepted")
	}
	if err := c.Add(&TableEntry{}); err == nil {
		t.Error("entry without schema accepted")
	}
}

func TestSetPlacement(t *testing.T) {
	c := New()
	if err := c.Add(&TableEntry{Schema: demoSchema(), Store: RowStore}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPlacement("sales", ColumnStore, nil); err != nil {
		t.Fatal(err)
	}
	if c.Table("sales").Store != ColumnStore {
		t.Error("store not updated")
	}
	if err := c.SetPlacement("ghost", RowStore, nil); err == nil {
		t.Error("unknown table accepted")
	}
	bad := &PartitionSpec{Horizontal: &HorizontalSpec{SplitCol: 99, SplitVal: value.NewInt(1)}}
	if err := c.SetPlacement("sales", Partitioned, bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestHorizontalSpecValidate(t *testing.T) {
	sch := demoSchema()
	good := &PartitionSpec{Horizontal: &HorizontalSpec{
		SplitCol: 0, SplitVal: value.NewBigint(1000), HotStore: RowStore, ColdStore: ColumnStore,
	}}
	if err := good.Validate(sch); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	cases := []*PartitionSpec{
		{},
		{Horizontal: &HorizontalSpec{SplitCol: -1, SplitVal: value.NewInt(0)}},
		{Horizontal: &HorizontalSpec{SplitCol: 0, SplitVal: value.Null(value.Bigint)}},
		{Horizontal: &HorizontalSpec{SplitCol: 0, SplitVal: value.NewInt(0), HotStore: Partitioned}},
	}
	for i, spec := range cases {
		if err := spec.Validate(sch); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
	var nilSpec *PartitionSpec
	if err := nilSpec.Validate(sch); err != nil {
		t.Errorf("nil spec should validate: %v", err)
	}
}

func TestVerticalSpecValidate(t *testing.T) {
	sch := demoSchema()
	good := &PartitionSpec{Vertical: &VerticalSpec{
		RowCols: []int{0, 3},
		ColCols: []int{0, 1, 2},
	}}
	if err := good.Validate(sch); err != nil {
		t.Errorf("good vertical rejected: %v", err)
	}
	cases := []*VerticalSpec{
		{RowCols: []int{0}, ColCols: nil},                  // empty side
		{RowCols: []int{0, 3}, ColCols: []int{0, 1}},       // col 2 missing
		{RowCols: []int{0, 1, 3}, ColCols: []int{0, 1, 2}}, // non-key dup
		{RowCols: []int{3}, ColCols: []int{0, 1, 2}},       // PK missing from row side
		{RowCols: []int{0, 99}, ColCols: []int{0, 1, 2}},   // out of range
	}
	for i, v := range cases {
		spec := &PartitionSpec{Vertical: v}
		if err := spec.Validate(sch); err == nil {
			t.Errorf("case %d: invalid vertical accepted", i)
		}
	}
}

func TestSpecString(t *testing.T) {
	spec := &PartitionSpec{
		Horizontal: &HorizontalSpec{SplitCol: 0, SplitVal: value.NewBigint(5), HotStore: RowStore, ColdStore: ColumnStore},
		Vertical:   &VerticalSpec{RowCols: []int{0, 3}, ColCols: []int{0, 1, 2}},
	}
	s := spec.String()
	for _, frag := range []string{"HORIZONTAL", "VERTICAL", "ROW", "COLUMN"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
	var nilSpec *PartitionSpec
	if nilSpec.String() != "none" {
		t.Error("nil spec string")
	}
}

func TestEntryHasIndex(t *testing.T) {
	e := &TableEntry{Schema: demoSchema(), Indexes: []int{2}}
	if !e.HasIndex(0) {
		t.Error("single-col PK should be indexed")
	}
	if !e.HasIndex(2) {
		t.Error("declared index missing")
	}
	if e.HasIndex(1) {
		t.Error("unindexed column reported indexed")
	}
}

func TestStatsCollector(t *testing.T) {
	types := []value.Type{value.Bigint, value.Integer, value.Varchar}
	sc := NewStatsCollector(types)
	for i := 0; i < 1000; i++ {
		sc.Add([]value.Value{
			value.NewBigint(int64(i)),
			value.NewInt(int64(i % 10)),
			value.NewVarchar("v" + string(rune('a'+i%3))),
		})
	}
	st := sc.Finish()
	if st.NumRows != 1000 {
		t.Errorf("rows = %d", st.NumRows)
	}
	if st.Distinct(0) != 1000 || st.Distinct(1) != 10 || st.Distinct(2) != 3 {
		t.Errorf("distinct = %v", st.DistinctN)
	}
	lo, hi, ok := st.MinMax(0)
	if !ok || lo.Int() != 0 || hi.Int() != 999 {
		t.Errorf("minmax = %v %v %v", lo, hi, ok)
	}
	// Low-cardinality columns compress better.
	if st.Compression[1] <= st.Compression[0] {
		t.Errorf("compression ordering: %v", st.Compression)
	}
	if st.AvgCompression() <= 0 {
		t.Error("avg compression should be positive")
	}
	if st.CompressionOf(1) != st.Compression[1] {
		t.Error("CompressionOf broken")
	}
	if st.CompressionOf(99) != st.AvgCompression() {
		t.Error("CompressionOf fallback broken")
	}
	if !strings.Contains(st.String(), "rows=1000") {
		t.Errorf("String = %s", st.String())
	}
}

func TestStatsCollectorNulls(t *testing.T) {
	sc := NewStatsCollector([]value.Type{value.Double})
	sc.Add([]value.Value{value.Null(value.Double)})
	sc.Add([]value.Value{value.NewDouble(5)})
	st := sc.Finish()
	if st.Distinct(0) != 1 {
		t.Errorf("distinct with null = %d", st.Distinct(0))
	}
	lo, hi, ok := st.MinMax(0)
	if !ok || lo.Double() != 5 || hi.Double() != 5 {
		t.Errorf("minmax with null = %v %v", lo, hi)
	}
}

func TestStatsCollectorCapExtrapolation(t *testing.T) {
	sc := NewStatsCollector([]value.Type{value.Bigint})
	sc.distinctCap = 100
	for i := 0; i < 1000; i++ {
		sc.Add([]value.Value{value.NewBigint(int64(i))})
	}
	st := sc.Finish()
	// All values distinct: extrapolation should land near 1000.
	if st.Distinct(0) < 500 || st.Distinct(0) > 1000 {
		t.Errorf("extrapolated distinct = %d", st.Distinct(0))
	}
}

func TestNilStatsAccessors(t *testing.T) {
	var st *TableStats
	if st.Distinct(0) != 0 {
		t.Error("nil Distinct")
	}
	if _, _, ok := st.MinMax(0); ok {
		t.Error("nil MinMax")
	}
	if st.AvgCompression() != 0 || st.CompressionOf(0) != 0 {
		t.Error("nil compression")
	}
	if st.String() != "<no stats>" {
		t.Error("nil String")
	}
}

// Regression: a stored NDV above the row count (stale stats, overshoot,
// approximate sources) must clamp to the row count — equality
// selectivity is 1/NDV, so an uncapped NDV collapses cardinality
// estimates toward zero and mis-prices join build sides.
func TestDistinctClampedToRowCount(t *testing.T) {
	st := &TableStats{NumRows: 50, DistinctN: []int{5000, 10, 0}}
	if d := st.Distinct(0); d != 50 {
		t.Errorf("Distinct(0) = %d, want clamp to 50", d)
	}
	if d := st.Distinct(1); d != 10 {
		t.Errorf("Distinct(1) = %d, want 10 untouched", d)
	}
	// 0 keeps meaning "unknown" so default-selectivity fallbacks hold.
	if d := st.Distinct(2); d != 0 {
		t.Errorf("Distinct(2) = %d, want 0", d)
	}
}
