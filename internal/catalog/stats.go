package catalog

import (
	"fmt"
	"strings"

	"hybridstore/internal/compress"
	"hybridstore/internal/value"
)

// TableStats holds the data characteristics the paper's cost model
// consumes: cardinality, per-column distinct counts (which determine
// dictionary-compression rates), value ranges for selectivity estimation,
// and the resulting compression rates. These are "basic table statistics"
// in offline mode and are refreshed from live data in online mode.
type TableStats struct {
	NumRows     int
	DistinctN   []int // per column
	MinV, MaxV  []value.Value
	HasRange    []bool
	Compression []float64 // per column, the rate the column store achieves
	AvgVarchar  []int     // average varchar payload length per column
}

// Rows implements expr.ColumnStats.
func (s *TableStats) Rows() int { return s.NumRows }

// Distinct implements expr.ColumnStats. The stored estimate is clamped
// to the row count: a column cannot hold more distinct values than rows,
// and an overcounted NDV (stale stats, extrapolation overshoot, the
// column store's approximate dictionary sum) would drive 1/NDV equality
// selectivities — and with them group-by/join cardinalities — toward
// zero, mis-pricing build sides. 0 still means "unknown" and keeps the
// default-selectivity fallbacks.
func (s *TableStats) Distinct(col int) int {
	if s == nil || col < 0 || col >= len(s.DistinctN) {
		return 0
	}
	d := s.DistinctN[col]
	if d > s.NumRows {
		d = s.NumRows
	}
	return d
}

// MinMax implements expr.ColumnStats.
func (s *TableStats) MinMax(col int) (value.Value, value.Value, bool) {
	if s == nil || col < 0 || col >= len(s.HasRange) || !s.HasRange[col] {
		return value.Value{}, value.Value{}, false
	}
	return s.MinV[col], s.MaxV[col], true
}

// AvgCompression returns the mean compression rate over all columns — the
// table-level rate used by f_compression when a query touches the whole
// table.
func (s *TableStats) AvgCompression() float64 {
	if s == nil || len(s.Compression) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range s.Compression {
		sum += r
	}
	return sum / float64(len(s.Compression))
}

// CompressionOf returns the compression rate of one column, falling back
// to the table average when unknown.
func (s *TableStats) CompressionOf(col int) float64 {
	if s == nil {
		return 0
	}
	if col >= 0 && col < len(s.Compression) {
		return s.Compression[col]
	}
	return s.AvgCompression()
}

// String summarizes the stats.
func (s *TableStats) String() string {
	if s == nil {
		return "<no stats>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rows=%d avg_compression=%.2f", s.NumRows, s.AvgCompression())
	return b.String()
}

// StatsCollector incrementally builds TableStats from a stream of rows.
// Distinct counting is exact up to distinctCap values per column and
// linearly extrapolated beyond it, so collection stays O(rows) with
// bounded memory on large tables.
type StatsCollector struct {
	types       []value.Type
	rows        int
	seen        []map[string]struct{}
	capped      []bool
	seenAtCap   []int // rows scanned when the cap was hit
	minV, maxV  []value.Value
	hasRange    []bool
	varcharLen  []int
	varcharCnt  []int
	distinctCap int
}

// DefaultDistinctCap bounds per-column exact distinct tracking.
const DefaultDistinctCap = 1 << 16

// NewStatsCollector creates a collector for columns of the given types.
func NewStatsCollector(types []value.Type) *StatsCollector {
	n := len(types)
	sc := &StatsCollector{
		types:       types,
		seen:        make([]map[string]struct{}, n),
		capped:      make([]bool, n),
		seenAtCap:   make([]int, n),
		minV:        make([]value.Value, n),
		maxV:        make([]value.Value, n),
		hasRange:    make([]bool, n),
		varcharLen:  make([]int, n),
		varcharCnt:  make([]int, n),
		distinctCap: DefaultDistinctCap,
	}
	for i := range sc.seen {
		sc.seen[i] = make(map[string]struct{})
	}
	return sc
}

// Add folds one row into the statistics.
func (sc *StatsCollector) Add(row []value.Value) {
	sc.rows++
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		if !sc.capped[i] {
			sc.seen[i][v.Key()] = struct{}{}
			if len(sc.seen[i]) >= sc.distinctCap {
				sc.capped[i] = true
				sc.seenAtCap[i] = sc.rows
			}
		}
		if !sc.hasRange[i] {
			sc.minV[i], sc.maxV[i] = v, v
			sc.hasRange[i] = true
		} else {
			if value.Less(v, sc.minV[i]) {
				sc.minV[i] = v
			}
			if value.Less(sc.maxV[i], v) {
				sc.maxV[i] = v
			}
		}
		if sc.types[i] == value.Varchar {
			sc.varcharLen[i] += len(v.Varchar())
			sc.varcharCnt[i]++
		}
	}
}

// Finish produces the TableStats.
func (sc *StatsCollector) Finish() *TableStats {
	n := len(sc.types)
	st := &TableStats{
		NumRows:     sc.rows,
		DistinctN:   make([]int, n),
		MinV:        sc.minV,
		MaxV:        sc.maxV,
		HasRange:    sc.hasRange,
		Compression: make([]float64, n),
		AvgVarchar:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		d := len(sc.seen[i])
		if sc.capped[i] && sc.seenAtCap[i] > 0 {
			// Linear extrapolation: distinct values kept appearing at the
			// cap rate for the remaining rows (upper-bounded by row count).
			d = int(float64(d) * float64(sc.rows) / float64(sc.seenAtCap[i]))
			if d > sc.rows {
				d = sc.rows
			}
		}
		st.DistinctN[i] = d
		if sc.varcharCnt[i] > 0 {
			st.AvgVarchar[i] = sc.varcharLen[i] / sc.varcharCnt[i]
		}
		st.Compression[i] = compress.ColumnRate(sc.rows, d, sc.types[i], st.AvgVarchar[i])
	}
	return st
}
