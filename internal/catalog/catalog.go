// Package catalog implements the system catalog of the hybrid-store
// database: table schemas, their current store placement, partitioning
// annotations and table statistics. The paper extends the HANA system
// catalog with exactly these pieces — compression statistics for the cost
// model's data adjustments (§3.1) and per-table partitioning annotations
// that drive transparent query rewriting (§4).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// StoreKind identifies where a table's data lives.
type StoreKind uint8

const (
	// RowStore keeps tuples contiguously (OLTP-optimized).
	RowStore StoreKind = iota
	// ColumnStore keeps attributes contiguously with dictionary
	// compression (OLAP-optimized).
	ColumnStore
	// Partitioned tables are split across both stores according to a
	// PartitionSpec.
	Partitioned
)

// String names the store kind.
func (s StoreKind) String() string {
	switch s {
	case RowStore:
		return "ROW"
	case ColumnStore:
		return "COLUMN"
	case Partitioned:
		return "PARTITIONED"
	default:
		return fmt.Sprintf("StoreKind(%d)", uint8(s))
	}
}

// HorizontalSpec splits a table into a "hot" partition (rows whose SplitCol
// value is >= SplitVal, typically current/newly arriving data kept in the
// row store for fast inserts and updates) and a "cold" partition (historic
// data, typically in the column store for fast analysis). This is the
// paper's horizontal partitioning scheme (Figure 2).
type HorizontalSpec struct {
	SplitCol  int
	SplitVal  value.Value
	HotStore  StoreKind // RowStore or ColumnStore
	ColdStore StoreKind // store of the cold partition unless a VerticalSpec overrides it
}

// VerticalSpec splits a table's attributes into a row-store partition
// (frequently updated OLTP attributes) and a column-store partition
// (aggregated keyfigures and group-by attributes). Both partitions carry
// the primary-key columns, which is how the partitions are re-joined for
// queries spanning them (paper Figure 3).
type VerticalSpec struct {
	RowCols []int // table column indexes stored row-oriented (includes PK)
	ColCols []int // table column indexes stored column-oriented (includes PK)
}

// PartitionSpec is the catalog's partitioning annotation for one table.
// Horizontal and Vertical may be combined: the vertical split then applies
// to the cold partition while hot rows are stored as whole tuples, the
// combination the paper describes at the end of §3.2.
type PartitionSpec struct {
	Horizontal *HorizontalSpec
	Vertical   *VerticalSpec
}

// Validate checks a spec against a schema.
func (p *PartitionSpec) Validate(sch *schema.Table) error {
	if p == nil {
		return nil
	}
	if p.Horizontal == nil && p.Vertical == nil {
		return fmt.Errorf("catalog: empty partition spec for %q", sch.Name)
	}
	if h := p.Horizontal; h != nil {
		if h.SplitCol < 0 || h.SplitCol >= sch.NumColumns() {
			return fmt.Errorf("catalog: horizontal split column %d out of range for %q", h.SplitCol, sch.Name)
		}
		if h.SplitVal.IsNull() {
			return fmt.Errorf("catalog: horizontal split value must not be NULL")
		}
		if h.HotStore == Partitioned || h.ColdStore == Partitioned {
			return fmt.Errorf("catalog: partition stores must be ROW or COLUMN")
		}
	}
	if v := p.Vertical; v != nil {
		if len(v.RowCols) == 0 || len(v.ColCols) == 0 {
			return fmt.Errorf("catalog: vertical partitions must both be non-empty for %q", sch.Name)
		}
		seen := make(map[int]int)
		for _, c := range append(append([]int{}, v.RowCols...), v.ColCols...) {
			if c < 0 || c >= sch.NumColumns() {
				return fmt.Errorf("catalog: vertical partition column %d out of range for %q", c, sch.Name)
			}
			seen[c]++
		}
		// Every column must appear; only PK columns may appear twice.
		for i := 0; i < sch.NumColumns(); i++ {
			n := seen[i]
			switch {
			case n == 0:
				return fmt.Errorf("catalog: column %d of %q missing from vertical partitioning", i, sch.Name)
			case n > 1 && !sch.IsPrimaryKey(i):
				return fmt.Errorf("catalog: non-key column %d of %q duplicated across vertical partitions", i, sch.Name)
			}
		}
		for _, k := range sch.PrimaryKey {
			if !containsInt(v.RowCols, k) || !containsInt(v.ColCols, k) {
				return fmt.Errorf("catalog: primary key column %d must be in both vertical partitions of %q", k, sch.Name)
			}
		}
	}
	return nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Equal compares two specs structurally (nil-safe). Specs are immutable
// once built, so rendered-string equality is exact.
func (p *PartitionSpec) Equal(o *PartitionSpec) bool {
	if p == nil || o == nil {
		return p == o
	}
	return p.String() == o.String()
}

// String renders the spec for display in recommendations.
func (p *PartitionSpec) String() string {
	if p == nil {
		return "none"
	}
	var parts []string
	if h := p.Horizontal; h != nil {
		parts = append(parts, fmt.Sprintf("HORIZONTAL(col%d >= %s -> %s, rest -> %s)",
			h.SplitCol, h.SplitVal, h.HotStore, h.ColdStore))
	}
	if v := p.Vertical; v != nil {
		parts = append(parts, fmt.Sprintf("VERTICAL(row=%v, column=%v)", v.RowCols, v.ColCols))
	}
	return strings.Join(parts, " + ")
}

// TableEntry is the catalog record for one table.
type TableEntry struct {
	Schema       *schema.Table
	Store        StoreKind
	Partitioning *PartitionSpec
	Stats        *TableStats
	Indexes      []int // row-store secondary-indexed columns
}

// HasIndex reports whether col has a declared secondary index (or is the
// single-column primary key, which is always indexed).
func (e *TableEntry) HasIndex(col int) bool {
	if len(e.Schema.PrimaryKey) == 1 && e.Schema.PrimaryKey[0] == col {
		return true
	}
	return containsInt(e.Indexes, col)
}

// Catalog is the thread-safe table registry.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*TableEntry

	// version counts catalog mutations (DDL, placement changes, index
	// declarations, statistics refreshes). Cached query plans record the
	// version they were built against and are invalidated when it moves.
	version atomic.Uint64
}

// Version returns the current catalog version. It increases on every
// mutation that could change a query plan: table add/remove, placement
// change, index declaration and statistics refresh.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*TableEntry)}
}

func key(name string) string { return strings.ToLower(name) }

// Add registers a table. The entry's Partitioning is validated.
func (c *Catalog) Add(entry *TableEntry) error {
	if entry == nil || entry.Schema == nil {
		return fmt.Errorf("catalog: nil entry")
	}
	if err := entry.Partitioning.Validate(entry.Schema); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(entry.Schema.Name)
	if _, dup := c.tables[k]; dup {
		return fmt.Errorf("catalog: table %q already exists", entry.Schema.Name)
	}
	c.tables[k] = entry
	c.version.Add(1)
	return nil
}

// Table returns a snapshot of the entry for name, or nil. The snapshot
// is a shallow copy taken under the catalog lock: the pointed-to Schema,
// Partitioning spec and Stats are immutable once published (writers
// replace them wholesale via SetPlacement/SetStats), so callers may read
// the snapshot freely while the canonical entry keeps changing — the
// online monitor and advisor read entries concurrently with migrations.
func (c *Catalog) Table(name string) *TableEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.tables[key(name)]
	if !ok {
		return nil
	}
	cp := *e
	return &cp
}

// SetStats publishes refreshed table statistics.
func (c *Catalog) SetStats(name string, st *TableStats) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.tables[key(name)]
	if !ok {
		return false
	}
	e.Stats = st
	c.version.Add(1)
	return true
}

// AddIndex records a secondary-index declaration (idempotent).
func (c *Catalog) AddIndex(name string, col int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.tables[key(name)]
	if !ok {
		return false
	}
	if !containsInt(e.Indexes, col) {
		e.Indexes = append(e.Indexes, col)
		c.version.Add(1)
	}
	return true
}

// Remove drops a table from the catalog.
func (c *Catalog) Remove(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return false
	}
	delete(c.tables, k)
	c.version.Add(1)
	return true
}

// Names returns the sorted table names.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, e := range c.tables {
		out = append(out, e.Schema.Name)
	}
	sort.Strings(out)
	return out
}

// SetPlacement updates a table's store and partitioning annotation.
func (c *Catalog) SetPlacement(name string, store StoreKind, spec *PartitionSpec) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.tables[key(name)]
	if !ok {
		return fmt.Errorf("catalog: unknown table %q", name)
	}
	if err := spec.Validate(e.Schema); err != nil {
		return err
	}
	e.Store = store
	e.Partitioning = spec
	c.version.Add(1)
	return nil
}
