// Package migrate turns live advisor recommendations into background
// store migrations: a Manager periodically snapshots the workload
// monitor, asks the advisor for a layout, and — when the predicted
// improvement clears a hysteresis threshold — executes the row↔column
// moves through the engine's non-blocking migration path
// (engine.MigrateLayout: build aside, replay the buffered write tail,
// swap atomically). It also watches column-store delta fragments and
// triggers Compact when they grow past a threshold, so merged
// read-optimized fragments keep the cost model's assumptions true under
// sustained writes.
//
// Hysteresis has two parts, both needed to keep a stable mix from
// oscillating between layouts: a minimum relative improvement of the
// recommended layout over the cost of staying put, and a per-table
// cooldown between migrations.
package migrate

import (
	"fmt"
	"sync"
	"time"

	"hybridstore/internal/advisor"
	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/metrics"
	"hybridstore/internal/monitor"
)

// Config tunes the manager.
type Config struct {
	// Hysteresis is the default minimum relative predicted improvement
	// (e.g. 0.1 = the recommended layout must be ≥10% cheaper than
	// staying put) before a migration is executed. AutoAdvise takes an
	// explicit override.
	Hysteresis float64
	// Cooldown is the minimum time between migrations of one table.
	Cooldown time.Duration
	// MinWindowQueries gates automatic evaluation until the rolling
	// window has seen at least this many queries.
	MinWindowQueries int
	// CompactDeltaRows triggers Compact on a table whose write-optimized
	// delta fragments exceed this many rows (0 disables the watcher).
	CompactDeltaRows int
	// CompactMinInterval floors the adaptive compaction cadence: under
	// heavy bulk ingest the manager checks deltas as often as this,
	// relaxing back toward the AutoAdvise interval when ingest is idle.
	// 0 disables adaptation (compaction checks at the AutoAdvise
	// interval only).
	CompactMinInterval time.Duration
}

// DefaultConfig returns the standard thresholds.
func DefaultConfig() Config {
	return Config{
		Hysteresis:         0.1,
		Cooldown:           30 * time.Second,
		MinWindowQueries:   100,
		CompactDeltaRows:   50000,
		CompactMinInterval: time.Second,
	}
}

// Delta-merge instruments: how often the background merge runs, how
// many delta rows it folded into read-optimized fragments, and the
// adaptive cadence it is currently running at.
var (
	mMergeTotal = metrics.Default().Counter("hs_delta_merge_total",
		"background delta merges (Compact) triggered")
	mMergeRows = metrics.Default().Counter("hs_delta_merge_rows_total",
		"delta rows folded into read-optimized fragments by background merges")
	mMergeInterval = metrics.Default().Gauge("hs_delta_merge_interval_ms",
		"current adaptive delta-merge check cadence in milliseconds")
	mIngestRate = metrics.Default().Gauge("hs_delta_merge_ingest_rows_per_sec",
		"bulk-ingest row rate the merge cadence last adapted to")
)

// Event records one manager action for auditing (\migrate log in hsql).
type Event struct {
	Time   time.Time
	Table  string
	Action string // "migrate", "compact", "skip"
	Detail string
}

// Manager schedules background migrations from live recommendations.
type Manager struct {
	db  *engine.Database
	adv *advisor.Advisor
	mon *monitor.Monitor
	cfg Config

	mu       sync.Mutex
	lastMove map[string]time.Time
	lastRec  *advisor.Recommendation
	events   []Event
	running  bool
	stopCh   chan struct{}
	wg       sync.WaitGroup
	now      func() time.Time // test hook

	// Adaptive-cadence state: the last ingest totals reading and when it
	// was taken, so successive compactDelay calls can compute the bulk
	// ingest rate without the monitor carrying a window for us.
	lastIngest   map[string]int64
	lastIngestAt time.Time
}

// NewManager wires the manager to a database, advisor and monitor.
func NewManager(db *engine.Database, adv *advisor.Advisor, mon *monitor.Monitor, cfg Config) *Manager {
	if cfg.Hysteresis < 0 {
		cfg.Hysteresis = 0
	}
	return &Manager{
		db: db, adv: adv, mon: mon, cfg: cfg,
		lastMove: map[string]time.Time{},
		now:      time.Now,
	}
}

func (m *Manager) record(table, action, detail string) {
	m.mu.Lock()
	m.events = append(m.events, Event{Time: m.now(), Table: table, Action: action, Detail: detail})
	if len(m.events) > 256 {
		m.events = m.events[len(m.events)-256:]
	}
	m.mu.Unlock()
}

// Events returns a copy of the recent action log.
func (m *Manager) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// LastRecommendation returns the most recent recommendation (nil before
// the first Advise).
func (m *Manager) LastRecommendation() *advisor.Recommendation {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastRec
}

// Advise snapshots the rolling workload window, refreshes the catalog
// statistics of the observed tables and computes a recommendation.
func (m *Manager) Advise() (*advisor.Recommendation, error) {
	rec, _, err := m.advise()
	return rec, err
}

func (m *Manager) advise() (*advisor.Recommendation, *monitor.Snapshot, error) {
	snap := m.mon.Snapshot()
	if snap.Queries.Len() == 0 {
		return nil, nil, fmt.Errorf("migrate: no observed workload yet")
	}
	for _, tw := range snap.Tables {
		// Skip the full-scan refresh when the existing catalog statistics
		// are still close to the live row count — AutoAdvise ticks on
		// stable tables would otherwise rescan everything every interval.
		if e := m.db.Catalog().Table(tw.Name); e != nil && e.Stats != nil {
			n := e.Stats.NumRows
			if n > 0 && tw.Rows >= n-n/10 && tw.Rows <= n+n/10 {
				continue
			}
		}
		if _, err := m.db.CollectStats(tw.Name); err != nil {
			// A table may have been dropped while still in the window;
			// confine the failure to it instead of wedging the cycle.
			m.record(tw.Name, "skip", "stats: "+err.Error())
			continue
		}
	}
	rec, err := m.adv.RecommendSnapshot(snap, m.db.Catalog(), nil)
	if err != nil {
		return nil, nil, err
	}
	m.mu.Lock()
	m.lastRec = rec
	m.mu.Unlock()
	return rec, snap, nil
}

// pendingMoves lists the tables whose recommended placement differs from
// the catalog's current one.
func (m *Manager) pendingMoves(rec *advisor.Recommendation) []string {
	var out []string
	for t, store := range rec.Layout.Stores {
		e := m.db.Catalog().Table(t)
		if e == nil {
			continue
		}
		spec := rec.Layout.SpecFor(t)
		target := store
		if spec != nil {
			target = catalog.Partitioned
		}
		if e.Store != target || !e.Partitioning.Equal(spec) {
			out = append(out, t)
		}
	}
	return out
}

// Migrate executes a recommendation's layout changes through the
// engine's background migration path. It blocks until the moves complete
// (callers wanting a fire-and-forget apply run it on a goroutine) and
// returns the tables actually migrated. An explicit Migrate bypasses the
// per-table cooldown — that throttle exists for the automatic loop, not
// for an administrator applying a recommendation by hand.
func (m *Manager) Migrate(rec *advisor.Recommendation) ([]string, error) {
	return m.migrate(rec, false)
}

func (m *Manager) migrate(rec *advisor.Recommendation, honorCooldown bool) ([]string, error) {
	if rec == nil {
		return nil, fmt.Errorf("migrate: nil recommendation")
	}
	var moved []string
	for _, t := range m.pendingMoves(rec) {
		m.mu.Lock()
		last, seen := m.lastMove[t]
		now := m.now()
		m.mu.Unlock()
		if honorCooldown && seen && m.cfg.Cooldown > 0 && now.Sub(last) < m.cfg.Cooldown {
			m.record(t, "skip", "cooldown")
			continue
		}
		store := rec.Layout.Stores.StoreOf(t)
		spec := rec.Layout.SpecFor(t)
		if err := m.db.MigrateLayout(t, store, spec); err != nil {
			m.record(t, "skip", err.Error())
			return moved, fmt.Errorf("migrate: %s: %w", t, err)
		}
		m.mu.Lock()
		m.lastMove[t] = m.now()
		m.mu.Unlock()
		target := store.String()
		if spec != nil {
			target = spec.String()
		}
		m.record(t, "migrate", "-> "+target)
		moved = append(moved, t)
	}
	return moved, nil
}

// Evaluate runs one advisory cycle: snapshot, recommend, and migrate when
// the hysteresis test passes. It returns the migrated tables (nil when
// the recommendation was not worth applying). A negative hysteresis uses
// the config default.
func (m *Manager) Evaluate(hysteresis float64) ([]string, error) {
	if hysteresis < 0 {
		hysteresis = m.cfg.Hysteresis
	}
	rec, snap, err := m.advise()
	if err != nil {
		return nil, err
	}
	if len(m.pendingMoves(rec)) == 0 {
		return nil, nil
	}
	// Hysteresis: the recommended layout must beat the cost of staying
	// put by the required margin, otherwise a near-tie would oscillate
	// the table back and forth as the sampled mix wobbles.
	current := advisor.CurrentLayout(snap, m.db.Catalog())
	info := advisor.InfoFromCatalog(m.db.Catalog())
	stayCost := m.adv.EstimateLayout(snap.Queries, info, current)
	if stayCost > 0 && rec.PartitionedCost >= stayCost*(1-hysteresis) {
		m.record("", "skip", fmt.Sprintf("improvement %.1f%% below hysteresis %.1f%%",
			(1-rec.PartitionedCost/stayCost)*100, hysteresis*100))
		return nil, nil
	}
	return m.migrate(rec, true)
}

// CompactCheck triggers Compact on every table whose delta fragments
// exceed the configured threshold, returning the compacted tables. It
// also folds and prunes the MVCC transaction overlay (Vacuum): the
// background maintenance tick doubles as version-chain garbage
// collection, bounding overlay growth under write-heavy transactional
// load even when no table crosses the compaction threshold.
func (m *Manager) CompactCheck() []string {
	m.db.Vacuum()
	if m.cfg.CompactDeltaRows <= 0 {
		return nil
	}
	var compacted []string
	for _, name := range m.db.Catalog().Names() {
		delta, err := m.db.DeltaRows(name)
		if err != nil || delta < m.cfg.CompactDeltaRows {
			continue
		}
		if err := m.db.Compact(name); err == nil {
			m.record(name, "compact", fmt.Sprintf("delta=%d rows", delta))
			mMergeTotal.Inc()
			mMergeRows.Add(int64(delta))
			compacted = append(compacted, name)
		}
	}
	return compacted
}

// compactDelay computes the next compaction-check delay from the bulk
// ingest rate observed since the previous call: the expected time for a
// delta to grow from empty to the merge threshold at the current rate,
// clamped between the configured floor and the AutoAdvise interval
// ceiling. Idle ingest relaxes to the ceiling; a firehose pins the
// cadence at the floor.
func (m *Manager) compactDelay(ceiling time.Duration) time.Duration {
	floor := m.cfg.CompactMinInterval
	delay := ceiling
	defer func() { mMergeInterval.Set(delay.Milliseconds()) }()
	if floor <= 0 || floor >= ceiling || m.cfg.CompactDeltaRows <= 0 || m.mon == nil {
		return delay
	}
	totals := m.mon.IngestRows()
	now := m.now()
	m.mu.Lock()
	elapsed := now.Sub(m.lastIngestAt)
	first := m.lastIngestAt.IsZero()
	var grew int64
	for t, n := range totals {
		grew += n - m.lastIngest[t]
	}
	m.lastIngest = totals
	m.lastIngestAt = now
	m.mu.Unlock()
	if first || grew <= 0 || elapsed <= 0 {
		mIngestRate.Set(0)
		return delay
	}
	rate := float64(grew) / elapsed.Seconds()
	mIngestRate.Set(int64(rate))
	delay = time.Duration(float64(m.cfg.CompactDeltaRows) / rate * float64(time.Second))
	if delay < floor {
		delay = floor
	}
	if delay > ceiling {
		delay = ceiling
	}
	return delay
}

// AutoAdvise starts the background advisory loop: every interval it
// evaluates the workload — once the rolling window holds enough queries
// — with the given hysteresis (negative = config default). Compaction
// checks run on their own adaptive timer: between CompactMinInterval
// and the AutoAdvise interval, paced by the observed bulk-ingest rate
// (see compactDelay), so sustained COPY streams get their deltas merged
// long before the advisory tick would notice them. It returns an error
// if the loop is already running; Stop ends it.
func (m *Manager) AutoAdvise(interval time.Duration, hysteresis float64) error {
	if interval <= 0 {
		return fmt.Errorf("migrate: non-positive auto-advise interval %v", interval)
	}
	m.mu.Lock()
	if m.running {
		m.mu.Unlock()
		return fmt.Errorf("migrate: auto-advise already running")
	}
	m.running = true
	m.stopCh = make(chan struct{})
	stop := m.stopCh
	m.mu.Unlock()

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		compact := time.NewTimer(m.compactDelay(interval))
		defer compact.Stop()
		for {
			select {
			case <-stop:
				return
			case <-compact.C:
				m.CompactCheck()
				compact.Reset(m.compactDelay(interval))
			case <-ticker.C:
				if m.mon.Seen() < m.cfg.MinWindowQueries {
					continue
				}
				m.Evaluate(hysteresis) //nolint:errcheck // advisory loop: failures surface via Events
			}
		}
	}()
	return nil
}

// Stop ends the AutoAdvise loop and waits for it to finish.
func (m *Manager) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	m.running = false
	close(m.stopCh)
	m.mu.Unlock()
	m.wg.Wait()
}
