package migrate

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridstore/internal/advisor"
	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/engine"
	"hybridstore/internal/monitor"
	"hybridstore/internal/query"
	"hybridstore/internal/workload"
)

const tableRows = 20000

// newStack builds an engine with the standard experiment table in the
// given store, a monitor with a short rolling window, and a manager with
// test-friendly thresholds.
func newStack(t *testing.T, store catalog.StoreKind, cfg Config) (*engine.Database, *monitor.Monitor, *Manager, *workload.TableSpec) {
	t.Helper()
	db := engine.New()
	spec := workload.StandardTable("exp")
	if err := spec.Load(db, store, tableRows, 7); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact("exp"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CollectStats("exp"); err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(db, monitor.Config{Epochs: 3, RotateEvery: 200, SampleCap: 256})
	mgr := NewManager(db, advisor.New(costmodel.DefaultModel()), mon, cfg)
	return db, mon, mgr, spec
}

// exec runs every workload query through the engine so the monitor
// observes it.
func exec(t *testing.T, db *engine.Database, w *query.Workload) {
	t.Helper()
	for _, q := range w.Queries {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
}

// The mixes deliberately generate no inserts: the generator derives
// insert keys from TableRows, so two generated workloads would collide
// on primary keys (insert traffic is covered by the engine stress test
// and TestCompactCheck).
func oltpMix(queries int, seed int64) *query.Workload {
	return workload.GenMixed(workload.StandardTable("exp"), workload.MixConfig{
		Queries: queries, OLAPFraction: 0, TableRows: tableRows, Seed: seed,
		UpdateWeight: 1, PointSelectWeight: 1,
	})
}

func olapMix(queries int, seed int64) *query.Workload {
	return workload.GenMixed(workload.StandardTable("exp"), workload.MixConfig{
		Queries: queries, OLAPFraction: 0.5, TableRows: tableRows, Seed: seed,
		UpdateWeight: 1, PointSelectWeight: 1,
	})
}

func migrateEvents(m *Manager) int {
	n := 0
	for _, e := range m.Events() {
		if e.Action == "migrate" {
			n++
		}
	}
	return n
}

// TestShiftTriggersBackgroundMigration is the acceptance scenario: a
// table serving OLAP-heavy traffic in the column store sees its mix shift
// to OLTP-heavy; the evaluation cycle recommends the row store and
// executes the column->row migration in the background while concurrent
// queries keep running and stay correct.
func TestShiftTriggersBackgroundMigration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cooldown = 0
	cfg.MinWindowQueries = 0
	db, _, mgr, _ := newStack(t, catalog.ColumnStore, cfg)

	// Phase 1: OLAP-heavy — the advisor keeps the column store.
	exec(t, db, olapMix(400, 11))
	moved, err := mgr.Evaluate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 0 {
		t.Fatalf("OLAP-heavy phase should not move the table, moved %v", moved)
	}
	if e := db.Catalog().Table("exp"); e.Store != catalog.ColumnStore {
		t.Fatalf("store after OLAP phase: %v", e.Store)
	}

	// Phase 2: the mix shifts to OLTP-heavy; the rolling window ages the
	// OLAP phase out entirely (3 epochs x 200 queries).
	exec(t, db, oltpMix(700, 13))

	// Concurrent read traffic during the evaluation + background move.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads atomic.Int64
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := oltpMix(200, int64(100+r))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := w.Queries[i%len(w.Queries)]
				if q.Kind != query.Select {
					continue
				}
				if _, err := db.Exec(q); err != nil {
					t.Error(err)
					return
				}
				reads.Add(1)
			}
		}(r)
	}
	moved, err = mgr.Evaluate(0)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 1 || moved[0] != "exp" {
		t.Fatalf("OLTP shift should migrate exp, moved %v", moved)
	}
	e := db.Catalog().Table("exp")
	if e.Store == catalog.ColumnStore {
		t.Fatalf("store after OLTP shift is still the plain column store")
	}
	if reads.Load() == 0 {
		t.Error("no concurrent reads executed during the migration")
	}
	// No rows lost across the background move (inserts added some).
	n, err := db.Rows("exp")
	if err != nil {
		t.Fatal(err)
	}
	if n < tableRows {
		t.Errorf("rows after migration = %d, want >= %d", n, tableRows)
	}

	// Stability: the same OLTP mix keeps flowing; further evaluations must
	// not oscillate the table back.
	before := migrateEvents(mgr)
	for round := 0; round < 3; round++ {
		exec(t, db, oltpMix(200, int64(40+round)))
		if _, err := mgr.Evaluate(0); err != nil {
			t.Fatal(err)
		}
	}
	if after := migrateEvents(mgr); after != before {
		t.Errorf("stable mix caused %d extra migrations", after-before)
	}
}

// TestHysteresisBlocksMarginalMoves: with a near-total hysteresis
// requirement, even a clearly beneficial move is suppressed — the gate
// that keeps borderline mixes from flapping.
func TestHysteresisBlocksMarginalMoves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cooldown = 0
	cfg.MinWindowQueries = 0
	db, _, mgr, _ := newStack(t, catalog.ColumnStore, cfg)
	exec(t, db, oltpMix(700, 21))
	moved, err := mgr.Evaluate(0.999)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 0 {
		t.Fatalf("hysteresis 99.9%% should block the move, moved %v", moved)
	}
	if e := db.Catalog().Table("exp"); e.Store != catalog.ColumnStore {
		t.Errorf("store changed despite hysteresis: %v", e.Store)
	}
	skips := 0
	for _, ev := range mgr.Events() {
		if ev.Action == "skip" {
			skips++
		}
	}
	if skips == 0 {
		t.Error("hysteresis skip not recorded in the event log")
	}
}

// TestCooldownThrottlesRepeatMoves: a table cannot be migrated twice
// within the cooldown window even when recommendations keep differing.
func TestCooldownThrottlesRepeatMoves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cooldown = time.Hour
	cfg.MinWindowQueries = 0
	db, _, mgr, _ := newStack(t, catalog.ColumnStore, cfg)
	base := time.Unix(1000000, 0)
	mgr.now = func() time.Time { return base }

	exec(t, db, oltpMix(700, 31))
	moved, err := mgr.Evaluate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 1 {
		t.Fatalf("first evaluation should move, got %v", moved)
	}
	// Force a differing recommendation by shifting back to OLAP: within
	// the cooldown the move must be skipped.
	exec(t, db, olapMix(700, 32))
	moved, err = mgr.Evaluate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 0 {
		t.Fatalf("cooldown should block the second move, got %v", moved)
	}
	// An explicit (administrator) Migrate bypasses the automatic
	// cooldown...
	moved, err = mgr.Migrate(mgr.LastRecommendation())
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 1 {
		t.Fatalf("manual Migrate should bypass the cooldown, got %v", moved)
	}
	// ...and moving back is again subject to it for the automatic path.
	exec(t, db, oltpMix(700, 33))
	if moved, err = mgr.Evaluate(0); err != nil || len(moved) != 0 {
		t.Fatalf("cooldown should still block the auto path, got %v err %v", moved, err)
	}
	// After the cooldown expires the move is allowed again.
	mgr.now = func() time.Time { return base.Add(2 * time.Hour) }
	moved, err = mgr.Evaluate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 1 {
		t.Fatalf("post-cooldown evaluation should move, got %v", moved)
	}
}

// TestCompactCheck: the delta watcher merges a column store whose
// write-optimized fragment crossed the threshold.
func TestCompactCheck(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CompactDeltaRows = 100
	db, _, mgr, spec := newStack(t, catalog.ColumnStore, cfg)
	// Push fresh inserts into the delta without triggering auto-merge.
	w := workload.GenMixed(spec, workload.MixConfig{
		Queries: 200, OLAPFraction: 0, TableRows: tableRows, Seed: 5,
		InsertWeight: 1,
	})
	exec(t, db, w)
	delta, err := db.DeltaRows("exp")
	if err != nil {
		t.Fatal(err)
	}
	if delta < cfg.CompactDeltaRows {
		t.Skipf("delta %d below threshold (auto-merge interfered)", delta)
	}
	compacted := mgr.CompactCheck()
	if len(compacted) != 1 || compacted[0] != "exp" {
		t.Fatalf("compacted %v", compacted)
	}
	if delta, _ = db.DeltaRows("exp"); delta != 0 {
		t.Errorf("delta after compact = %d", delta)
	}
}

// TestAutoAdvise drives the full background loop: traffic shifts, the
// loop notices and migrates on its own.
func TestAutoAdvise(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cooldown = 0
	cfg.MinWindowQueries = 100
	db, _, mgr, _ := newStack(t, catalog.ColumnStore, cfg)
	if err := mgr.AutoAdvise(5*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	if err := mgr.AutoAdvise(5*time.Millisecond, 0); err == nil {
		t.Error("double AutoAdvise accepted")
	}
	exec(t, db, oltpMix(700, 41))
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if e := db.Catalog().Table("exp"); e.Store != catalog.ColumnStore {
			return // the loop migrated the table
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("auto-advise loop never migrated the table")
}

// TestAdaptiveCompactCadence pins the cadence math: the next compaction
// delay is the time the current bulk-ingest rate needs to fill the merge
// threshold, clamped between the floor and the AutoAdvise ceiling.
func TestAdaptiveCompactCadence(t *testing.T) {
	db := engine.New()
	defer db.Close()
	mon := monitor.New(db, monitor.DefaultConfig())
	m := NewManager(db, advisor.New(costmodel.DefaultModel()), mon, Config{
		CompactDeltaRows:   1000,
		CompactMinInterval: time.Second,
	})
	base := time.Now()
	m.now = func() time.Time { return base }

	const ceiling = time.Minute
	// First reading establishes the baseline: no rate yet, ceiling.
	if d := m.compactDelay(ceiling); d != ceiling {
		t.Fatalf("first delay = %v, want ceiling %v", d, ceiling)
	}
	// 10k rows/s against a 1000-row threshold wants 0.1s — clamped to
	// the floor.
	mon.ObserveIngest("t", 10000)
	base = base.Add(time.Second)
	if d := m.compactDelay(ceiling); d != time.Second {
		t.Fatalf("firehose delay = %v, want floor 1s", d)
	}
	// 10 rows/s wants 100s — clamped to the ceiling.
	mon.ObserveIngest("t", 100)
	base = base.Add(10 * time.Second)
	if d := m.compactDelay(ceiling); d != ceiling {
		t.Fatalf("trickle delay = %v, want ceiling %v", d, ceiling)
	}
	// 200 rows/s wants exactly 5s — inside the band, used as-is.
	mon.ObserveIngest("t", 2000)
	base = base.Add(10 * time.Second)
	if d := m.compactDelay(ceiling); d != 5*time.Second {
		t.Fatalf("mid-band delay = %v, want 5s", d)
	}
	// Idle relaxes back to the ceiling.
	base = base.Add(10 * time.Second)
	if d := m.compactDelay(ceiling); d != ceiling {
		t.Fatalf("idle delay = %v, want ceiling %v", d, ceiling)
	}
	// Adaptation off (no floor): always the ceiling.
	m.cfg.CompactMinInterval = 0
	mon.ObserveIngest("t", 100000)
	base = base.Add(time.Second)
	if d := m.compactDelay(ceiling); d != ceiling {
		t.Fatalf("unadaptive delay = %v, want ceiling %v", d, ceiling)
	}
}
