package bitset

import (
	"math/rand"
	"testing"
)

func TestSetGetClear(t *testing.T) {
	b := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	b.Clear(64)
	if b.Get(64) || !b.Get(63) || !b.Get(65) {
		t.Error("Clear touched neighbors")
	}
}

func TestFillOnesAndCount(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128, 1000} {
		b := New(n + 70) // extra words that must stay zero
		b.FillOnes(n)
		if got := b.Count(); got != n {
			t.Errorf("FillOnes(%d): Count = %d", n, got)
		}
		if n > 0 && (!b.Get(0) || !b.Get(n-1)) {
			t.Errorf("FillOnes(%d): boundary bits unset", n)
		}
		if b.Get(n) {
			t.Errorf("FillOnes(%d): bit %d leaked", n, n)
		}
	}
	// FillOnes must also clear previously set high bits.
	b := New(256)
	b.FillOnes(256)
	b.FillOnes(10)
	if b.Count() != 10 {
		t.Errorf("re-FillOnes left stale bits: %d", b.Count())
	}
}

func TestAndAndNot(t *testing.T) {
	a, b := New(128), New(128)
	a.FillOnes(100)
	for i := 0; i < 128; i += 3 {
		b.Set(i)
	}
	a.And(b)
	for i := 0; i < 128; i++ {
		want := i < 100 && i%3 == 0
		if a.Get(i) != want {
			t.Fatalf("And: bit %d = %v", i, a.Get(i))
		}
	}
	a.AndNot(b)
	if a.Count() != 0 {
		t.Errorf("AndNot of identical sets left %d bits", a.Count())
	}
}

func TestRangeOpsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 500
	b := New(n)
	ref := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			b.Set(i)
			ref[i] = true
		}
	}
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(n + 1)
		hi := lo + rng.Intn(n+1-lo)
		wantCount, wantAny := 0, false
		var wantSet []int32
		for i := lo; i < hi; i++ {
			if ref[i] {
				wantCount++
				wantAny = true
				wantSet = append(wantSet, int32(i))
			}
		}
		if got := b.CountRange(lo, hi); got != wantCount {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", lo, hi, got, wantCount)
		}
		if got := b.AnyRange(lo, hi); got != wantAny {
			t.Fatalf("AnyRange(%d,%d) = %v", lo, hi, got)
		}
		got := b.AppendSet(nil, lo, hi)
		if len(got) != len(wantSet) {
			t.Fatalf("AppendSet(%d,%d) len = %d, want %d", lo, hi, len(got), len(wantSet))
		}
		for i := range got {
			if got[i] != wantSet[i] {
				t.Fatalf("AppendSet(%d,%d)[%d] = %d, want %d", lo, hi, i, got[i], wantSet[i])
			}
		}
	}
}

func TestGrow(t *testing.T) {
	b := New(64)
	b.Set(10)
	b = Grow(b, 1000)
	if !b.Get(10) || b.Count() != 1 {
		t.Error("Grow lost contents")
	}
	if len(b) != Words(1000) {
		t.Errorf("Grow len = %d", len(b))
	}
	// Growing within capacity must zero the newly exposed words.
	c := make(Bits, 1, 8)
	c[0] = 5
	cap3 := c[:3]
	cap3[2] = ^uint64(0) // dirty word beyond len
	c = c[:1]
	c = Grow(c, 130)
	if c[2] != 0 {
		t.Error("Grow exposed dirty word")
	}
}
