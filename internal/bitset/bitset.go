// Package bitset provides the dense uint64 bitmap the column store's
// vectorized scan pipeline operates on. A Bits value holds one bit per row
// slot packed 64 to a word, so predicate conjunctions combine with
// word-at-a-time AND/ANDNOT instead of per-row boolean writes, and set-bit
// iteration advances with trailing-zero counts instead of testing every
// slot.
//
// Invariant: bits at positions >= the logical length are always zero, so
// Count and word-level iteration never see ghost rows. All writers in this
// package maintain the invariant; code that fills words directly (the
// column store's block scan) is responsible for masking its final partial
// word.
package bitset

import "math/bits"

// Bits is a dense bitmap. The logical length is tracked by the caller; the
// slice holds Words(n) words for n bits.
type Bits []uint64

// Words returns the number of uint64 words needed for n bits.
func Words(n int) int { return (n + 63) / 64 }

// New returns a zeroed bitmap with capacity for n bits.
func New(n int) Bits { return make(Bits, Words(n)) }

// Grow returns a bitmap with capacity for at least n bits, preserving the
// contents of b. Newly added words are zero.
func Grow(b Bits, n int) Bits {
	w := Words(n)
	if w <= len(b) {
		return b
	}
	if w <= cap(b) {
		nb := b[:w]
		for i := len(b); i < w; i++ {
			nb[i] = 0
		}
		return nb
	}
	nb := make(Bits, w, w+w/2+64)
	copy(nb, b)
	return nb
}

// Get reports whether bit i is set.
func (b Bits) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bits) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bits) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Zero clears every word.
func (b Bits) Zero() {
	for i := range b {
		b[i] = 0
	}
}

// FillOnes sets bits [0, n) and zeroes any remaining words.
func (b Bits) FillOnes(n int) {
	full := n >> 6
	for i := 0; i < full; i++ {
		b[i] = ^uint64(0)
	}
	if full < len(b) {
		if rem := uint(n) & 63; rem != 0 {
			b[full] = 1<<rem - 1
			full++
		}
		for i := full; i < len(b); i++ {
			b[i] = 0
		}
	}
}

// And intersects b with o word-at-a-time (b &= o).
func (b Bits) And(o Bits) {
	for i := range b {
		b[i] &= o[i]
	}
}

// AndNot removes o's bits from b word-at-a-time (b &^= o).
func (b Bits) AndNot(o Bits) {
	for i := range b {
		b[i] &^= o[i]
	}
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// CountRange returns the number of set bits in [lo, hi).
func (b Bits) CountRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	lw, hw := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	if lw == hw {
		return bits.OnesCount64(b[lw] & loMask & hiMask)
	}
	n := bits.OnesCount64(b[lw] & loMask)
	for i := lw + 1; i < hw; i++ {
		n += bits.OnesCount64(b[i])
	}
	return n + bits.OnesCount64(b[hw]&hiMask)
}

// AppendSet appends the positions of set bits in [lo, hi) to dst, skipping
// zero words and advancing within a word by trailing-zero counts.
func (b Bits) AppendSet(dst []int32, lo, hi int) []int32 {
	if lo >= hi {
		return dst
	}
	for wi := lo >> 6; wi <= (hi-1)>>6; wi++ {
		w := b[wi]
		if w == 0 {
			continue
		}
		base := wi << 6
		if base < lo {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if base+63 >= hi {
			w &= ^uint64(0) >> (63 - uint(hi-1)&63)
		}
		for w != 0 {
			dst = append(dst, int32(base+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// AnyRange reports whether any bit in [lo, hi) is set.
func (b Bits) AnyRange(lo, hi int) bool {
	if lo >= hi {
		return false
	}
	lw, hw := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	if lw == hw {
		return b[lw]&loMask&hiMask != 0
	}
	if b[lw]&loMask != 0 {
		return true
	}
	for i := lw + 1; i < hw; i++ {
		if b[i] != 0 {
			return true
		}
	}
	return b[hw]&hiMask != 0
}
